// Package transport provides the two-party communication substrate used by
// every protocol in this repository: message-oriented duplex connections
// (in-process pipes and TCP framing), a compact wire codec for protocol
// messages, and instrumented connections that attribute bytes and messages
// to protocol tags. The instrumentation is what the communication-complexity
// experiments (DESIGN.md E3–E5) read.
package transport

import (
	"errors"
	"sync"
)

// Conn is a reliable, ordered, message-oriented duplex channel between the
// two parties of a protocol. Each Conn is used by exactly one goroutine
// (one party); Send and Recv never need external locking.
type Conn interface {
	// Send transmits one message to the peer. The slice is not retained.
	Send(b []byte) error
	// Recv blocks for the next message from the peer. It returns
	// ErrClosed after the peer closes its side and all queued messages
	// have been consumed.
	Recv() ([]byte, error)
	// Close releases the connection. Pending messages already sent remain
	// receivable by the peer.
	Close() error
}

// ErrClosed is returned by Recv and Send once a connection is closed.
var ErrClosed = errors.New("transport: connection closed")

// pipeHalf is one endpoint of an in-process connection.
type pipeHalf struct {
	send chan<- []byte
	recv <-chan []byte

	mu       sync.Mutex
	closed   bool
	peerDone <-chan struct{}
	done     chan struct{}
}

// Pipe returns a connected pair of in-process Conns. Messages written on
// one side are received on the other in order. The internal buffer is large
// enough that the strictly alternating protocols in this repository never
// block on Send.
func Pipe() (Conn, Conn) {
	const depth = 4096
	ab := make(chan []byte, depth)
	ba := make(chan []byte, depth)
	aDone := make(chan struct{})
	bDone := make(chan struct{})
	a := &pipeHalf{send: ab, recv: ba, done: aDone, peerDone: bDone}
	b := &pipeHalf{send: ba, recv: ab, done: bDone, peerDone: aDone}
	return a, b
}

func (p *pipeHalf) Send(b []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()
	msg := make([]byte, len(b))
	copy(msg, b)
	select {
	case p.send <- msg:
		return nil
	case <-p.peerDone:
		return ErrClosed
	}
}

func (p *pipeHalf) Recv() ([]byte, error) {
	select {
	case m := <-p.recv:
		return m, nil
	default:
	}
	select {
	case m := <-p.recv:
		return m, nil
	case <-p.peerDone:
		// Peer closed; drain anything that raced in.
		select {
		case m := <-p.recv:
			return m, nil
		default:
			return nil, ErrClosed
		}
	case <-p.done:
		return nil, ErrClosed
	}
}

func (p *pipeHalf) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.done)
	}
	return nil
}

// Run2 executes the two halves of a protocol over an in-process pipe and
// waits for both to finish. It returns the first non-nil error from either
// party. Both connections are closed when Run2 returns.
func Run2(alice, bob func(Conn) error) error {
	ca, cb := Pipe()
	return RunPair(ca, cb, alice, bob)
}

// RunPair executes the two halves over an existing connection pair.
func RunPair(ca, cb Conn, alice, bob func(Conn) error) error {
	errc := make(chan error, 2)
	go func() {
		err := alice(ca)
		ca.Close()
		errc <- err
	}()
	go func() {
		err := bob(cb)
		cb.Close()
		errc <- err
	}()
	var first error
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}
