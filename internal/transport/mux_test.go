package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// muxPair builds muxes over a connected pipe.
func muxPair() (*Mux, *Mux) {
	ca, cb := Pipe()
	return NewMux(ca), NewMux(cb)
}

func TestMuxFrameRoundTrip(t *testing.T) {
	for _, ch := range []uint32{0, 1, 7, MaxMuxChannels - 1} {
		payload := []byte{1, 2, 3, 250}
		frame := AppendMuxFrame(nil, ch, payload)
		gotCh, gotPayload, err := DecodeMuxFrame(frame)
		if err != nil {
			t.Fatalf("ch %d: %v", ch, err)
		}
		if gotCh != ch || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("ch %d: round trip got (%d, %v)", ch, gotCh, gotPayload)
		}
	}
	if _, _, err := DecodeMuxFrame(nil); err == nil {
		t.Error("empty frame decoded without error")
	}
	if _, _, err := DecodeMuxFrame(AppendMuxFrame(nil, MaxMuxChannels, nil)); err == nil {
		t.Error("out-of-range channel decoded without error")
	}
}

func TestMuxChannelsAreIndependentAndOrdered(t *testing.T) {
	ma, mb := muxPair()
	defer ma.Close()
	defer mb.Close()
	const perChan = 50
	var wg sync.WaitGroup
	for ch := uint32(0); ch < 3; ch++ {
		wg.Add(2)
		go func(ch uint32) {
			defer wg.Done()
			c := ma.Channel(ch)
			for i := 0; i < perChan; i++ {
				if err := c.Send([]byte(fmt.Sprintf("%d:%d", ch, i))); err != nil {
					t.Errorf("send ch %d: %v", ch, err)
					return
				}
			}
		}(ch)
		go func(ch uint32) {
			defer wg.Done()
			c := mb.Channel(ch)
			for i := 0; i < perChan; i++ {
				b, err := c.Recv()
				if err != nil {
					t.Errorf("recv ch %d: %v", ch, err)
					return
				}
				if want := fmt.Sprintf("%d:%d", ch, i); string(b) != want {
					t.Errorf("ch %d: got %q want %q (per-channel order broken)", ch, b, want)
					return
				}
			}
		}(ch)
	}
	wg.Wait()
}

// TestMuxSlowChannelDoesNotBlockOthers pins the head-of-line property: a
// channel nobody reads must not stall delivery on its siblings.
func TestMuxSlowChannelDoesNotBlockOthers(t *testing.T) {
	ma, mb := muxPair()
	defer ma.Close()
	defer mb.Close()
	// Queue traffic for channel 1 that nobody consumes yet.
	for i := 0; i < 20; i++ {
		if err := ma.Channel(1).Send([]byte("stalled")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ma.Channel(2).Send([]byte("live")); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		b, err := mb.Channel(2).Recv()
		if err != nil {
			t.Errorf("recv: %v", err)
		}
		got <- b
	}()
	select {
	case b := <-got:
		if string(b) != "live" {
			t.Fatalf("got %q", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live channel blocked behind an unread sibling")
	}
}

func TestMuxCloseUnblocksChannels(t *testing.T) {
	ma, mb := muxPair()
	if err := ma.Channel(0).Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Channel(0).Recv(); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := mb.Channel(3).Recv()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ma.Close()
	mb.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv not unblocked by close")
	}
}

// TestMeterConcurrentChannelWriters is the satellite race test: two mux
// channels writing simultaneously through one shared Meter must keep the
// aggregate counters exact (run under -race to catch unguarded state).
func TestMeterConcurrentChannelWriters(t *testing.T) {
	ca, cb := Pipe()
	meterA := NewMeter(ca)
	ma, mb := NewMux(meterA), NewMux(cb)
	defer ma.Close()
	defer mb.Close()

	const perChan = 200
	var wg sync.WaitGroup
	recvDone := make(chan int64, 2)
	for ch := uint32(0); ch < 2; ch++ {
		wg.Add(1)
		go func(ch uint32) {
			defer wg.Done()
			c := ma.Channel(ch)
			if _, ok := c.(interface{ SetTag(string) string }); !ok {
				t.Errorf("mux channel does not forward tags")
				return
			}
			c.(interface{ SetTag(string) string }).SetTag(fmt.Sprintf("worker%d", ch))
			for i := 0; i < perChan; i++ {
				if err := c.Send([]byte{byte(ch), byte(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(ch)
		go func(ch uint32) {
			var n int64
			c := mb.Channel(ch)
			for i := 0; i < perChan; i++ {
				b, err := c.Recv()
				if err != nil {
					t.Errorf("recv: %v", err)
					break
				}
				n += int64(len(b))
			}
			recvDone <- n
		}(ch)
	}
	wg.Wait()
	total := <-recvDone + <-recvDone

	stats := meterA.Stats()
	if stats.MessagesSent != 2*perChan {
		t.Errorf("meter counted %d messages, want %d", stats.MessagesSent, 2*perChan)
	}
	// Each frame carries the 1-byte channel tag plus the 2-byte payload.
	if want := int64(2*perChan) * 3; stats.BytesSent != want {
		t.Errorf("meter counted %d bytes, want %d", stats.BytesSent, want)
	}
	if total != 2*perChan*2 {
		t.Errorf("receivers saw %d payload bytes, want %d", total, 2*perChan*2)
	}
}

func TestLatencyPipeDelaysDelivery(t *testing.T) {
	const d = 30 * time.Millisecond
	ca, cb := LatencyPipe(d)
	defer ca.Close()
	defer cb.Close()
	start := time.Now()
	if err := ca.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello" {
		t.Fatalf("got %q", b)
	}
	if el := time.Since(start); el < d {
		t.Errorf("message delivered after %v, want ≥ %v", el, d)
	}
	// Two messages in flight overlap their delays: total wait ≈ d, not 2d.
	start = time.Now()
	ca.Send([]byte("a"))
	ca.Send([]byte("b"))
	cb.Recv()
	cb.Recv()
	if el := time.Since(start); el > 3*d {
		t.Errorf("pipelined messages took %v — latency must not serialize in-flight messages", el)
	}
}
