package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestListenerAcceptsManyPeers: the multi-accept listener serves several
// sequential and concurrent dials, and the MeterGroup aggregate equals
// the sum of the per-connection traffic.
func TestListenerAcceptsManyPeers(t *testing.T) {
	lis, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	const peers = 3
	var group MeterGroup
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < peers; i++ {
			conn, err := lis.Accept()
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			wg.Add(1)
			go func(conn Conn) {
				defer wg.Done()
				defer conn.Close()
				m := group.New(conn)
				b, err := m.Recv()
				if err != nil {
					t.Errorf("server recv: %v", err)
					return
				}
				if err := m.Send(append([]byte("ack:"), b...)); err != nil {
					t.Errorf("server send: %v", err)
				}
			}(conn)
		}
	}()

	for i := 0; i < peers; i++ {
		c, err := Dial(lis.Addr())
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte(fmt.Sprintf("hello-%d", i))
		if err := c.Send(msg); err != nil {
			t.Fatal(err)
		}
		b, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != "ack:"+string(msg) {
			t.Errorf("peer %d: reply %q", i, b)
		}
		c.Close()
	}
	wg.Wait()

	if group.Len() != peers {
		t.Errorf("group tracked %d meters, want %d", group.Len(), peers)
	}
	agg := group.Stats()
	if agg.MessagesRecv != peers || agg.MessagesSent != peers {
		t.Errorf("aggregate messages %d/%d, want %d/%d", agg.MessagesSent, agg.MessagesRecv, peers, peers)
	}
	if agg.BytesRecv == 0 || agg.BytesSent <= agg.BytesRecv {
		t.Errorf("aggregate bytes sent %d recv %d look wrong", agg.BytesSent, agg.BytesRecv)
	}
}

// TestListenerCloseUnblocksAccept: Close maps the pending Accept to
// ErrClosed — the SIGINT path of the serve loop.
func TestListenerCloseUnblocksAccept(t *testing.T) {
	lis, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := lis.Accept()
		done <- err
	}()
	if err := lis.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept after Close = %v, want ErrClosed", err)
	}
}

// TestListenerIdleTimeout: a peer that connects and goes silent must
// surface as a Recv error within the configured idle window instead of
// parking the serving goroutine forever.
func TestListenerIdleTimeout(t *testing.T) {
	lis, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	lis.SetConnOptions(100*time.Millisecond, time.Second)

	done := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = conn.Recv()
		done <- err
	}()

	peer, err := Dial(lis.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("silent peer's Recv returned without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle read deadline never fired")
	}
}

// TestListenerIdleTimeoutRearms: traffic inside the idle window keeps
// the connection alive — the deadline is per-Recv, not per-session.
func TestListenerIdleTimeoutRearms(t *testing.T) {
	lis, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	lis.SetConnOptions(250*time.Millisecond, 0)

	done := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		for i := 0; i < 4; i++ {
			if _, err := conn.Recv(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	peer, err := Dial(lis.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	// Four sends 100ms apart: total elapsed exceeds one idle window, but
	// no single gap does.
	for i := 0; i < 4; i++ {
		time.Sleep(100 * time.Millisecond)
		if err := peer.Send([]byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("re-armed idle deadline tripped on a live session: %v", err)
	}
}

// TestListenerIdleDisarmed: SetIdleArmed(false) suspends the deadline —
// a peer silent for longer than the idle window does not trip a
// disarmed Recv, and the frame sent after the silence arrives intact.
func TestListenerIdleDisarmed(t *testing.T) {
	lis, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	lis.SetConnOptions(100*time.Millisecond, 0)

	done := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		conn.(*idleConn).SetIdleArmed(false)
		b, err := conn.Recv()
		if err == nil && string(b) != "late" {
			err = fmt.Errorf("recv %q, want %q", b, "late")
		}
		done <- err
	}()

	peer, err := Dial(lis.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	// Stay silent for several idle windows, then send.
	time.Sleep(400 * time.Millisecond)
	if err := peer.Send([]byte("late")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("disarmed Recv tripped during expected silence: %v", err)
	}
}

// TestListenerIdleRearmBlockedRead: SetIdleArmed(true) applies to a Recv
// already parked on the socket — net.Conn deadlines cover pending reads
// — so a session loop can re-arm after a compute phase without waiting
// for the next frame.
func TestListenerIdleRearmBlockedRead(t *testing.T) {
	lis, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	lis.SetConnOptions(150*time.Millisecond, 0)

	accepted := make(chan Conn, 1)
	done := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			done <- err
			return
		}
		accepted <- conn
		defer conn.Close()
		conn.(*idleConn).SetIdleArmed(false)
		_, err = conn.Recv()
		done <- err
	}()

	peer, err := Dial(lis.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	conn := <-accepted
	// Give the disarmed Recv time to park on the socket, then re-arm: the
	// fresh idle window must start ticking for the pending read.
	time.Sleep(50 * time.Millisecond)
	conn.(*idleConn).SetIdleArmed(true)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("re-armed Recv returned without error on a silent peer")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("re-armed idle deadline never reached the blocked read")
	}
}
