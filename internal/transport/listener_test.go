package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestListenerAcceptsManyPeers: the multi-accept listener serves several
// sequential and concurrent dials, and the MeterGroup aggregate equals
// the sum of the per-connection traffic.
func TestListenerAcceptsManyPeers(t *testing.T) {
	lis, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	const peers = 3
	var group MeterGroup
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < peers; i++ {
			conn, err := lis.Accept()
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			wg.Add(1)
			go func(conn Conn) {
				defer wg.Done()
				defer conn.Close()
				m := group.New(conn)
				b, err := m.Recv()
				if err != nil {
					t.Errorf("server recv: %v", err)
					return
				}
				if err := m.Send(append([]byte("ack:"), b...)); err != nil {
					t.Errorf("server send: %v", err)
				}
			}(conn)
		}
	}()

	for i := 0; i < peers; i++ {
		c, err := Dial(lis.Addr())
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte(fmt.Sprintf("hello-%d", i))
		if err := c.Send(msg); err != nil {
			t.Fatal(err)
		}
		b, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != "ack:"+string(msg) {
			t.Errorf("peer %d: reply %q", i, b)
		}
		c.Close()
	}
	wg.Wait()

	if group.Len() != peers {
		t.Errorf("group tracked %d meters, want %d", group.Len(), peers)
	}
	agg := group.Stats()
	if agg.MessagesRecv != peers || agg.MessagesSent != peers {
		t.Errorf("aggregate messages %d/%d, want %d/%d", agg.MessagesSent, agg.MessagesRecv, peers, peers)
	}
	if agg.BytesRecv == 0 || agg.BytesSent <= agg.BytesRecv {
		t.Errorf("aggregate bytes sent %d recv %d look wrong", agg.BytesSent, agg.BytesRecv)
	}
}

// TestListenerCloseUnblocksAccept: Close maps the pending Accept to
// ErrClosed — the SIGINT path of the serve loop.
func TestListenerCloseUnblocksAccept(t *testing.T) {
	lis, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := lis.Accept()
		done <- err
	}()
	if err := lis.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept after Close = %v, want ErrClosed", err)
	}
}
