package transport

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Listener is the multi-accept counterpart of Listen: it binds once and
// hands out one framed Conn per inbound peer, the accept loop of a
// server that concurrently holds many sessions. Close unblocks a
// pending Accept with ErrClosed — the SIGINT path of `ppdbscan serve`.
type Listener struct {
	l         net.Listener
	idle      time.Duration
	keepalive time.Duration
}

// NewListener binds addr for repeated accepts.
func NewListener(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// SetConnOptions configures the per-connection hardening applied to
// every subsequently accepted peer: idle > 0 arms a read deadline of
// that duration before each Recv (a peer that goes silent mid-session —
// a hung client, a dead NAT entry — surfaces as a timeout error instead
// of a goroutine parked forever), and keepalive > 0 enables TCP
// keepalive probes at that period so dead peers are detected even
// between protocol reads. Zero disables either. Call before the accept
// loop starts.
func (l *Listener) SetConnOptions(idle, keepalive time.Duration) {
	l.idle = idle
	l.keepalive = keepalive
}

// Addr returns the bound address (useful when addr had port 0).
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept blocks for the next inbound peer and returns its framed
// connection with the configured conn options applied. After Close it
// returns ErrClosed.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	if l.keepalive > 0 {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetKeepAlive(true)
			_ = tc.SetKeepAlivePeriod(l.keepalive)
		}
	}
	conn := NewFrameConn(c)
	if l.idle > 0 {
		conn = &idleConn{inner: conn, nc: c, idle: l.idle}
	}
	return conn, nil
}

// idleConn wraps a framed connection with a rolling read deadline: each
// Recv re-arms the underlying net.Conn's deadline, so only silence
// longer than idle — not a long session — trips it. SetIdleArmed can
// switch the deadline off entirely for phases where peer silence is
// expected (a client computing locally mid-run); the serving session
// loop drives it.
type idleConn struct {
	inner    Conn
	nc       net.Conn
	idle     time.Duration
	disarmed atomic.Bool
}

func (c *idleConn) Send(b []byte) error { return c.inner.Send(b) }

func (c *idleConn) Recv() ([]byte, error) {
	if !c.disarmed.Load() {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.idle)); err != nil {
			return nil, fmt.Errorf("transport: arm read deadline: %w", err)
		}
	}
	return c.inner.Recv()
}

// SetIdleArmed switches the idle deadline on or off. Both directions
// take effect immediately, even for a Read already blocked on the
// socket (net.Conn deadlines apply to pending calls), so a session
// loop can disarm around a long-running protocol phase and re-arm when
// it goes back to waiting for control traffic. Re-arming starts a
// fresh idle window.
func (c *idleConn) SetIdleArmed(on bool) {
	if on {
		c.disarmed.Store(false)
		_ = c.nc.SetReadDeadline(time.Now().Add(c.idle))
	} else {
		c.disarmed.Store(true)
		_ = c.nc.SetReadDeadline(time.Time{})
	}
}

func (c *idleConn) Close() error { return c.inner.Close() }

// Close stops accepting; a blocked Accept returns ErrClosed. Already
// accepted connections are unaffected.
func (l *Listener) Close() error { return l.l.Close() }
