package transport

import (
	"errors"
	"fmt"
	"net"
)

// Listener is the multi-accept counterpart of Listen: it binds once and
// hands out one framed Conn per inbound peer, the accept loop of a
// server that concurrently holds many sessions. Close unblocks a
// pending Accept with ErrClosed — the SIGINT path of `ppdbscan serve`.
type Listener struct {
	l net.Listener
}

// NewListener binds addr for repeated accepts.
func NewListener(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address (useful when addr had port 0).
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept blocks for the next inbound peer and returns its framed
// connection. After Close it returns ErrClosed.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewFrameConn(c), nil
}

// Close stops accepting; a blocked Accept returns ErrClosed. Already
// accepted connections are unaffected.
func (l *Listener) Close() error { return l.l.Close() }
