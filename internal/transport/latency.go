package transport

import (
	"sync"
	"time"
)

// LatencyPipe is Pipe with a one-way delivery delay: every message
// becomes receivable d after it was sent, modelling WAN latency without
// throttling throughput (messages in flight overlap). The parallelism
// ablation (experiment E15) uses it to measure how the query scheduler
// hides round-trip time; the CPU cost of the cryptography is unchanged.
func LatencyPipe(d time.Duration) (Conn, Conn) {
	const depth = 4096
	ab := make(chan stamped, depth)
	ba := make(chan stamped, depth)
	aDone := make(chan struct{})
	bDone := make(chan struct{})
	a := &latencyHalf{d: d, send: ab, recv: ba, done: aDone, peerDone: bDone}
	b := &latencyHalf{d: d, send: ba, recv: ab, done: bDone, peerDone: aDone}
	return a, b
}

// stamped is one in-flight message with its send time.
type stamped struct {
	at time.Time
	b  []byte
}

// latencyHalf mirrors pipeHalf with delayed delivery.
type latencyHalf struct {
	d    time.Duration
	send chan<- stamped
	recv <-chan stamped

	mu       sync.Mutex
	closed   bool
	peerDone <-chan struct{}
	done     chan struct{}
}

func (p *latencyHalf) Send(b []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()
	msg := stamped{at: time.Now(), b: append([]byte(nil), b...)}
	select {
	case p.send <- msg:
		return nil
	case <-p.peerDone:
		return ErrClosed
	}
}

// hold blocks until the message's delivery time. Closure of either side
// does not cut delays short: a message already in flight arrives.
func (p *latencyHalf) hold(m stamped) []byte {
	if wait := time.Until(m.at.Add(p.d)); wait > 0 {
		time.Sleep(wait)
	}
	return m.b
}

func (p *latencyHalf) Recv() ([]byte, error) {
	select {
	case m := <-p.recv:
		return p.hold(m), nil
	default:
	}
	select {
	case m := <-p.recv:
		return p.hold(m), nil
	case <-p.peerDone:
		// Peer closed; drain anything that raced in.
		select {
		case m := <-p.recv:
			return p.hold(m), nil
		default:
			return nil, ErrClosed
		}
	case <-p.done:
		return nil, ErrClosed
	}
}

func (p *latencyHalf) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.done)
	}
	return nil
}
