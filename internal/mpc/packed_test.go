package mpc

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/encoding"
	"repro/internal/transport"
)

// testPacker sizes slots for the test grid: products ≤ 63² with
// zero-sum masks over a 2^20·63² bound and up to 3 mask terms.
func testPacker(t testing.TB) (*encoding.Packer, *big.Int) {
	t.Helper()
	k := testKey(t)
	maskBound := new(big.Int).Lsh(big.NewInt(63*63), 20)
	pk, err := encoding.NewProductPacker(k.PlaintextBound(), 63*63, maskBound, 3)
	if err != nil {
		t.Fatal(err)
	}
	return pk, maskBound
}

// TestGridMultiplyMatchesUnpacked runs the same grid — same values,
// same masks — through the packed and unpacked wire forms and asserts
// element-identical results, including negative masked sums (the
// unpacked path decodes them via DecryptSignedBatch, the packed path
// via biased slots; both must agree on every signed value).
func TestGridMultiplyMatchesUnpacked(t *testing.T) {
	k := testKey(t)
	pk, maskBound := testPacker(t)
	rows := pk.Slots()*2 + 1 // two full groups plus a short tail
	cols := 2
	xs := make([]int64, rows*cols)
	ys := []int64{63, 17}
	for i := range xs {
		xs[i] = int64(i*31) % 64
	}
	// Fixed masks reused across both forms, with aggressively negative
	// entries so signed decoding is genuinely exercised.
	vs := make([]*big.Int, rows*cols)
	for i := range vs {
		v, err := RandomMask(rand.Reader, maskBound)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			v.Neg(v)
		}
		vs[i] = v
	}
	var plain, packed []*big.Int
	if err := transport.Run2(
		func(c transport.Conn) error {
			us, err := ReceiverBatchMultiply(c, k, xs, rand.Reader, nil)
			plain = us
			return err
		},
		func(c transport.Conn) error {
			flatYs := make([]int64, rows*cols)
			for i := 0; i < rows; i++ {
				copy(flatYs[i*cols:], ys)
			}
			return SenderBatchMultiply(c, &k.PublicKey, flatYs, vs, rand.Reader, nil)
		},
	); err != nil {
		t.Fatal(err)
	}
	if err := transport.Run2(
		func(c transport.Conn) error {
			us, err := ReceiverGridMultiply(c, k, xs, rows, cols, pk, rand.Reader, nil)
			packed = us
			return err
		},
		func(c transport.Conn) error {
			return SenderGridMultiply(c, &k.PublicKey, ys, vs, rows, cols, pk, rand.Reader, nil)
		},
	); err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Cmp(packed[i]) != 0 {
			t.Fatalf("grid[%d]: packed %v ≠ unpacked %v", i, packed[i], plain[i])
		}
	}
}

// TestGridMultiplyCiphertextCount verifies the wire saving: a packed
// grid round exchanges 2·⌈rows/S⌉·cols ciphertext payloads instead of
// 2·rows·cols, measured as bytes over a metered pipe.
func TestGridMultiplyCiphertextCount(t *testing.T) {
	k := testKey(t)
	pk, maskBound := testPacker(t)
	if pk.Slots() < 2 {
		t.Skip("key too small to pack multiple slots")
	}
	rows, cols := pk.Slots()*3, 2
	xs := make([]int64, rows*cols)
	ys := []int64{5, 9}
	vs := make([]*big.Int, rows*cols)
	flatYs := make([]int64, rows*cols)
	for i := range vs {
		v, err := RandomMask(rand.Reader, maskBound)
		if err != nil {
			t.Fatal(err)
		}
		vs[i] = v
	}
	for i := 0; i < rows; i++ {
		copy(flatYs[i*cols:], ys)
	}
	measure := func(packed bool) int64 {
		ca, cb := transport.Pipe()
		ma, mb := transport.NewMeter(ca), transport.NewMeter(cb)
		err := transport.RunPair(ma, mb,
			func(transport.Conn) error {
				var err error
				if packed {
					_, err = ReceiverGridMultiply(ma, k, xs, rows, cols, pk, rand.Reader, nil)
				} else {
					_, err = ReceiverBatchMultiply(ma, k, xs, rand.Reader, nil)
				}
				return err
			},
			func(transport.Conn) error {
				if packed {
					return SenderGridMultiply(mb, &k.PublicKey, ys, vs, rows, cols, pk, rand.Reader, nil)
				}
				return SenderBatchMultiply(mb, &k.PublicKey, flatYs, vs, rand.Reader, nil)
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		return ma.Stats().BytesSent + mb.Stats().BytesSent
	}
	unpacked, packed := measure(false), measure(true)
	if packed*2 > unpacked {
		t.Fatalf("packed grid round costs %d bytes, unpacked %d — want ≥2× saving at S=%d", packed, unpacked, pk.Slots())
	}
}

func TestScatterMultiplyMatchesUnpacked(t *testing.T) {
	k := testKey(t)
	pk, maskBound := testPacker(t)
	n := pk.Slots() + 2
	xs := make([]int64, n)
	ys := make([]int64, n)
	vs := make([]*big.Int, n)
	for i := range xs {
		xs[i] = int64(i*13) % 64
		ys[i] = int64(i*7) % 64 // distinct per-element scalars
		v, err := RandomMask(rand.Reader, maskBound)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			v.Neg(v)
		}
		vs[i] = v
	}
	ys[1] = 0 // zero scalar: slot must still carry its mask
	var plain, packed []*big.Int
	if err := transport.Run2(
		func(c transport.Conn) error {
			us, err := ReceiverBatchMultiply(c, k, xs, rand.Reader, nil)
			plain = us
			return err
		},
		func(c transport.Conn) error {
			return SenderBatchMultiply(c, &k.PublicKey, ys, vs, rand.Reader, nil)
		},
	); err != nil {
		t.Fatal(err)
	}
	if err := transport.Run2(
		func(c transport.Conn) error {
			us, err := ReceiverScatterMultiply(c, k, xs, pk, rand.Reader, nil)
			packed = us
			return err
		},
		func(c transport.Conn) error {
			return SenderScatterMultiply(c, &k.PublicKey, ys, vs, pk, rand.Reader, nil)
		},
	); err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Cmp(packed[i]) != 0 {
			t.Fatalf("scatter[%d]: packed %v ≠ unpacked %v", i, packed[i], plain[i])
		}
	}
}

func TestDotManyPackedMatchesUnpacked(t *testing.T) {
	k := testKey(t)
	// The §5 dot products land in [0, bound+shareV): non-negative slots.
	pk, err := encoding.NewSumPacker(k.PlaintextBound(), 2*63*63+1024)
	if err != nil {
		t.Fatal(err)
	}
	a := []int64{100, -2 * 7, -2 * 9, 1}
	count := pk.Slots() + 3
	bs := make([][]int64, count)
	vs := make([]*big.Int, count)
	for i := range bs {
		bs[i] = []int64{1, int64(i % 14), int64((i * 3) % 14), int64(i%14)*int64(i%14) + int64((i*3)%14)*int64((i*3)%14)}
		vs[i] = big.NewInt(int64(i * 37 % 1024))
	}
	var plain, packed []*big.Int
	if err := transport.Run2(
		func(c transport.Conn) error {
			us, err := ReceiverDotMany(c, k, a, count, rand.Reader, nil)
			plain = us
			return err
		},
		func(c transport.Conn) error {
			return SenderDotMany(c, &k.PublicKey, bs, vs, rand.Reader, nil)
		},
	); err != nil {
		t.Fatal(err)
	}
	if err := transport.Run2(
		func(c transport.Conn) error {
			us, err := ReceiverDotManyPacked(c, k, a, count, pk, rand.Reader, nil)
			packed = us
			return err
		},
		func(c transport.Conn) error {
			return SenderDotManyPacked(c, &k.PublicKey, bs, vs, pk, rand.Reader, nil)
		},
	); err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Cmp(packed[i]) != 0 {
			t.Fatalf("dot[%d]: packed %v ≠ unpacked %v", i, packed[i], plain[i])
		}
	}
}

// TestDotManyPackedRetainWireCompatible: the retaining sender must be
// indistinguishable to the receiver from SenderDotManyPacked — same
// reply groups, same decoded dot products — while the retained D_i
// decrypt to exactly the masked dot products the receiver sees.
func TestDotManyPackedRetainWireCompatible(t *testing.T) {
	k := testKey(t)
	pk, err := encoding.NewSumPacker(k.PlaintextBound(), 2*63*63+1024)
	if err != nil {
		t.Fatal(err)
	}
	a := []int64{100, -2 * 7, -2 * 9, 1}
	count := pk.Slots() + 3
	bs := make([][]int64, count)
	vs := make([]*big.Int, count)
	for i := range bs {
		bs[i] = []int64{1, int64(i % 14), int64((i * 3) % 14), int64(i%14)*int64(i%14) + int64((i*3)%14)*int64((i*3)%14)}
		vs[i] = big.NewInt(int64(i * 37 % 1024))
	}
	var plain, packed []*big.Int
	var ds []*big.Int
	if err := transport.Run2(
		func(c transport.Conn) error {
			us, err := ReceiverDotMany(c, k, a, count, rand.Reader, nil)
			plain = us
			return err
		},
		func(c transport.Conn) error {
			return SenderDotMany(c, &k.PublicKey, bs, vs, rand.Reader, nil)
		},
	); err != nil {
		t.Fatal(err)
	}
	if err := transport.Run2(
		func(c transport.Conn) error {
			us, err := ReceiverDotManyPacked(c, k, a, count, pk, rand.Reader, nil)
			packed = us
			return err
		},
		func(c transport.Conn) error {
			var err error
			ds, err = SenderDotManyPackedRetain(c, &k.PublicKey, bs, vs, pk, rand.Reader, nil)
			return err
		},
	); err != nil {
		t.Fatal(err)
	}
	if len(ds) != count {
		t.Fatalf("retained %d ciphertexts, want %d", len(ds), count)
	}
	for i := range plain {
		if plain[i].Cmp(packed[i]) != 0 {
			t.Fatalf("dot[%d]: retain-packed %v ≠ unpacked %v", i, packed[i], plain[i])
		}
		di, err := k.DecryptSigned(ds[i])
		if err != nil {
			t.Fatal(err)
		}
		if di.Cmp(plain[i]) != 0 {
			t.Fatalf("retained D_%d decrypts to %v, want %v", i, di, plain[i])
		}
	}
}
