package mpc

import (
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/paillier"
	"repro/internal/transport"
)

var (
	keyOnce sync.Once
	key     *paillier.PrivateKey
)

func testKey(t testing.TB) *paillier.PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		k, err := paillier.GenerateKey(rand.Reader, 256)
		if err != nil {
			t.Fatal(err)
		}
		key = k
	})
	return key
}

func TestMultiplyCorrectness(t *testing.T) {
	k := testKey(t)
	cases := []struct {
		x, y int64
		v    int64
	}{
		{3, 4, 10},
		{3, 4, -10},
		{-3, 4, 7},
		{3, -4, 7},
		{-3, -4, 0},
		{0, 99, 5},
		{99, 0, 5},
		{1 << 30, 1 << 20, 1 << 40},
	}
	for _, tc := range cases {
		var u *big.Int
		err := transport.Run2(
			func(c transport.Conn) error {
				var err error
				u, err = ReceiverMultiply(c, k, tc.x, rand.Reader)
				return err
			},
			func(c transport.Conn) error {
				return SenderMultiply(c, &k.PublicKey, tc.y, big.NewInt(tc.v), rand.Reader)
			},
		)
		if err != nil {
			t.Fatalf("Multiply(%d,%d,%d): %v", tc.x, tc.y, tc.v, err)
		}
		want := tc.x*tc.y + tc.v
		if u.Int64() != want {
			t.Errorf("u = %v, want %d", u, want)
		}
	}
}

// Property: u − v = x·y for random int32 inputs — the receiver's output
// minus the sender's mask is always the true product (Algorithm 2's
// correctness proof).
func TestMultiplyProperty(t *testing.T) {
	k := testKey(t)
	f := func(x, y, v int32) bool {
		var u *big.Int
		err := transport.Run2(
			func(c transport.Conn) error {
				var err error
				u, err = ReceiverMultiply(c, k, int64(x), rand.Reader)
				return err
			},
			func(c transport.Conn) error {
				return SenderMultiply(c, &k.PublicKey, int64(y), big.NewInt(int64(v)), rand.Reader)
			},
		)
		if err != nil {
			return false
		}
		diff := new(big.Int).Sub(u, big.NewInt(int64(v)))
		return diff.Int64() == int64(x)*int64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestBatchMultiply(t *testing.T) {
	k := testKey(t)
	xs := []int64{1, -2, 3, 0, 5}
	ys := []int64{10, 20, -30, 40, 0}
	vs := []*big.Int{big.NewInt(7), big.NewInt(-7), big.NewInt(0), big.NewInt(1), big.NewInt(2)}
	var us []*big.Int
	err := transport.Run2(
		func(c transport.Conn) error {
			var err error
			us, err = ReceiverBatchMultiply(c, k, xs, rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			return SenderBatchMultiply(c, &k.PublicKey, ys, vs, rand.Reader, nil)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		want := xs[i]*ys[i] + vs[i].Int64()
		if us[i].Int64() != want {
			t.Errorf("u[%d] = %v, want %d", i, us[i], want)
		}
	}
}

func TestBatchMultiplyLengthMismatch(t *testing.T) {
	k := testKey(t)
	err := transport.Run2(
		func(c transport.Conn) error {
			_, err := ReceiverBatchMultiply(c, k, []int64{1, 2, 3}, rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			return SenderBatchMultiply(c, &k.PublicKey, []int64{1, 2},
				[]*big.Int{big.NewInt(0), big.NewInt(0)}, rand.Reader, nil)
		},
	)
	if !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestSenderMaskCountMismatch(t *testing.T) {
	k := testKey(t)
	conn, peer := transport.Pipe()
	defer conn.Close()
	defer peer.Close()
	err := SenderBatchMultiply(conn, &k.PublicKey, []int64{1, 2}, []*big.Int{big.NewInt(0)}, rand.Reader, nil)
	if !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestDotProduct(t *testing.T) {
	k := testKey(t)
	a := []int64{2, -3, 4}
	b := []int64{5, 6, -7}
	v := big.NewInt(1000)
	var u *big.Int
	err := transport.Run2(
		func(c transport.Conn) error {
			var err error
			u, err = ReceiverDot(c, k, a, rand.Reader)
			return err
		},
		func(c transport.Conn) error {
			return SenderDot(c, &k.PublicKey, b, v, rand.Reader)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2*5+(-3)*6+4*(-7)) + 1000
	if u.Int64() != want {
		t.Errorf("u = %v, want %d", u, want)
	}
}

// The §5 distance-sharing identity: with a = (ΣA_k², −2A_1, …, −2A_m, 1)
// and b_i = (1, B_i1, …, B_im, ΣB_ik²), the masked dot products satisfy
// u_i − v_i = Dist²(A, B_i).
func TestDotManySharesDistances(t *testing.T) {
	k := testKey(t)
	A := []int64{3, 7}
	Bs := [][]int64{{0, 0}, {3, 7}, {10, 1}, {4, 8}}

	a := []int64{A[0]*A[0] + A[1]*A[1], -2 * A[0], -2 * A[1], 1}
	bs := make([][]int64, len(Bs))
	vs := make([]*big.Int, len(Bs))
	for i, B := range Bs {
		bs[i] = []int64{1, B[0], B[1], B[0]*B[0] + B[1]*B[1]}
		vs[i] = big.NewInt(int64(1000 * (i + 1)))
	}

	var us []*big.Int
	err := transport.Run2(
		func(c transport.Conn) error {
			var err error
			us, err = ReceiverDotMany(c, k, a, len(Bs), rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			return SenderDotMany(c, &k.PublicKey, bs, vs, rand.Reader, nil)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, B := range Bs {
		dx, dy := A[0]-B[0], A[1]-B[1]
		wantDist := dx*dx + dy*dy
		got := new(big.Int).Sub(us[i], vs[i])
		if got.Int64() != wantDist {
			t.Errorf("point %d: u−v = %v, want Dist² = %d", i, got, wantDist)
		}
	}
}

func TestDotManyDimensionMismatch(t *testing.T) {
	k := testKey(t)
	err := transport.Run2(
		func(c transport.Conn) error {
			_, err := ReceiverDotMany(c, k, []int64{1, 2, 3}, 1, rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			return SenderDotMany(c, &k.PublicKey, [][]int64{{1, 2}}, []*big.Int{big.NewInt(0)}, rand.Reader, nil)
		},
	)
	if !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestDotManyCountMismatch(t *testing.T) {
	k := testKey(t)
	err := transport.Run2(
		func(c transport.Conn) error {
			_, err := ReceiverDotMany(c, k, []int64{1}, 3, rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			return SenderDotMany(c, &k.PublicKey, [][]int64{{1}}, []*big.Int{big.NewInt(0)}, rand.Reader, nil)
		},
	)
	if !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestReceiverDotManyRejectsZeroCount(t *testing.T) {
	k := testKey(t)
	conn, peer := transport.Pipe()
	defer conn.Close()
	defer peer.Close()
	if _, err := ReceiverDotMany(conn, k, []int64{1}, 0, rand.Reader, nil); err == nil {
		t.Error("count 0 accepted")
	}
}

func TestZeroSumMasks(t *testing.T) {
	bound := big.NewInt(1 << 30)
	for _, m := range []int{1, 2, 5, 16} {
		masks, err := ZeroSumMasks(rand.Reader, m, bound)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if len(masks) != m {
			t.Fatalf("m=%d: got %d masks", m, len(masks))
		}
		sum := new(big.Int)
		for _, r := range masks {
			sum.Add(sum, r)
		}
		if sum.Sign() != 0 {
			t.Errorf("m=%d: masks sum to %v, want 0", m, sum)
		}
	}
}

func TestZeroSumMasksValidation(t *testing.T) {
	if _, err := ZeroSumMasks(rand.Reader, 0, big.NewInt(10)); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := ZeroSumMasks(rand.Reader, 3, big.NewInt(0)); err == nil {
		t.Error("bound=0 accepted")
	}
}

func TestZeroSumMasksSingle(t *testing.T) {
	masks, err := ZeroSumMasks(rand.Reader, 1, big.NewInt(100))
	if err != nil {
		t.Fatal(err)
	}
	if masks[0].Sign() != 0 {
		t.Errorf("single mask must be 0, got %v", masks[0])
	}
}

func TestRandomMask(t *testing.T) {
	bound := big.NewInt(1000)
	for i := 0; i < 50; i++ {
		v, err := RandomMask(rand.Reader, bound)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() < 0 || v.Cmp(bound) >= 0 {
			t.Fatalf("mask %v outside [0,1000)", v)
		}
	}
	if _, err := RandomMask(rand.Reader, big.NewInt(0)); err == nil {
		t.Error("zero bound accepted")
	}
}

// HDP usage shape: masked per-coordinate products with zero-sum masks must
// sum to exactly the dot product (the masks cancel).
func TestZeroSumMasksCancelInBatch(t *testing.T) {
	k := testKey(t)
	dx := []int64{3, 1, 4, 1, 5} // Alice's coordinates (sender)
	dy := []int64{9, 2, 6, 5, 3} // Bob's coordinates (receiver)
	masks, err := ZeroSumMasks(rand.Reader, len(dx), big.NewInt(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	var us []*big.Int
	err = transport.Run2(
		func(c transport.Conn) error {
			var err error
			us, err = ReceiverBatchMultiply(c, k, dy, rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			return SenderBatchMultiply(c, &k.PublicKey, dx, masks, rand.Reader, nil)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	sum := new(big.Int)
	for _, u := range us {
		sum.Add(sum, u)
	}
	var wantDot int64
	for i := range dx {
		wantDot += dx[i] * dy[i]
	}
	if sum.Int64() != wantDot {
		t.Errorf("Σu = %v, want dot product %d", sum, wantDot)
	}
}

// Communication shape: a batch of m multiplications is exactly one message
// each way carrying m ciphertexts — O(c1·m) per the paper.
func TestBatchCommunicationShape(t *testing.T) {
	k := testKey(t)
	const m = 8
	ca, cb := transport.Pipe()
	ma, mb := transport.NewMeter(ca), transport.NewMeter(cb)
	xs := make([]int64, m)
	ys := make([]int64, m)
	vs := make([]*big.Int, m)
	rng := mrand.New(mrand.NewSource(1))
	for i := range xs {
		xs[i] = int64(rng.Intn(100))
		ys[i] = int64(rng.Intn(100))
		vs[i] = big.NewInt(int64(rng.Intn(100)))
	}
	err := transport.RunPair(ma, mb,
		func(c transport.Conn) error {
			_, err := ReceiverBatchMultiply(c, k, xs, rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			return SenderBatchMultiply(c, &k.PublicKey, ys, vs, rand.Reader, nil)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := ma.Stats().MessagesSent; got != 1 {
		t.Errorf("receiver sent %d messages, want 1", got)
	}
	if got := mb.Stats().MessagesSent; got != 1 {
		t.Errorf("sender sent %d messages, want 1", got)
	}
	// Each ciphertext is ≤ 2·256 bits = 64 bytes; m of them plus framing.
	if got := ma.Stats().BytesSent; got > int64(m*(64+4)+16) {
		t.Errorf("receiver sent %d bytes, exceeds O(c1·m) budget", got)
	}
}
