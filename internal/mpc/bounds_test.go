package mpc

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/paillier"
	"repro/internal/transport"
)

// The Paillier plaintext space bounds every masked product: x·y + v must
// stay below n/2 in absolute value. These tests pin the failure mode when
// a caller violates that contract — a clean error from the encryption
// layer, not silent wraparound.

func TestSenderMaskBeyondPlaintextSpaceFails(t *testing.T) {
	k := testKey(t)
	huge := new(big.Int).Set(k.PlaintextBound()) // exactly n/2: out of range
	err := transport.Run2(
		func(c transport.Conn) error {
			_, err := ReceiverMultiply(c, k, 3, rand.Reader)
			return err
		},
		func(c transport.Conn) error {
			return SenderMultiply(c, &k.PublicKey, 4, huge, rand.Reader)
		},
	)
	if err == nil {
		t.Fatal("mask at n/2 accepted")
	}
}

func TestLargeButLegalValuesRoundTrip(t *testing.T) {
	k := testKey(t)
	// Values near int64 limits are far below n/2 for a 256-bit key and
	// must work exactly.
	x := int64(1) << 31
	y := int64(1) << 31
	v := new(big.Int).Lsh(big.NewInt(1), 70) // bigger than any int64 product
	var u *big.Int
	err := transport.Run2(
		func(c transport.Conn) error {
			var err error
			u, err = ReceiverMultiply(c, k, x, rand.Reader)
			return err
		},
		func(c transport.Conn) error {
			return SenderMultiply(c, &k.PublicKey, y, v, rand.Reader)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Mul(big.NewInt(x), big.NewInt(y))
	want.Add(want, v)
	if u.Cmp(want) != 0 {
		t.Errorf("u = %v, want %v", u, want)
	}
}

func TestNegativeMasksCancelExactly(t *testing.T) {
	k := testKey(t)
	// A full zero-sum mask cycle at scale: 16 coordinates, masks spanning
	// the documented ±2^62 range.
	masks, err := ZeroSumMasks(rand.Reader, 16, new(big.Int).Lsh(big.NewInt(1), 62))
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]int64, 16)
	ys := make([]int64, 16)
	var wantDot int64
	for i := range xs {
		xs[i] = int64(i * 13)
		ys[i] = int64(100 - i*7)
		wantDot += xs[i] * ys[i]
	}
	var us []*big.Int
	err = transport.Run2(
		func(c transport.Conn) error {
			var err error
			us, err = ReceiverBatchMultiply(c, k, xs, rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			return SenderBatchMultiply(c, &k.PublicKey, ys, masks, rand.Reader, nil)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	sum := new(big.Int)
	for _, u := range us {
		sum.Add(sum, u)
	}
	if sum.Int64() != wantDot {
		t.Errorf("masked sum = %v, want %d", sum, wantDot)
	}
}

func BenchmarkBatchMultiply8(b *testing.B) {
	k, err := paillier.GenerateKey(rand.Reader, 256)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]int64, 8)
	ys := make([]int64, 8)
	vs := make([]*big.Int, 8)
	for i := range xs {
		xs[i] = int64(i + 1)
		ys[i] = int64(i * 3)
		vs[i] = big.NewInt(int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := transport.Run2(
			func(c transport.Conn) error {
				_, err := ReceiverBatchMultiply(c, k, xs, rand.Reader, nil)
				return err
			},
			func(c transport.Conn) error {
				return SenderBatchMultiply(c, &k.PublicKey, ys, vs, rand.Reader, nil)
			},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDotMany16(b *testing.B) {
	k, err := paillier.GenerateKey(rand.Reader, 256)
	if err != nil {
		b.Fatal(err)
	}
	a := []int64{100, -2, -4, 1}
	bs := make([][]int64, 16)
	vs := make([]*big.Int, 16)
	for i := range bs {
		bs[i] = []int64{1, int64(i), int64(i * 2), int64(i * i)}
		vs[i] = big.NewInt(int64(i * 10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := transport.Run2(
			func(c transport.Conn) error {
				_, err := ReceiverDotMany(c, k, a, 16, rand.Reader, nil)
				return err
			},
			func(c transport.Conn) error {
				return SenderDotMany(c, &k.PublicKey, bs, vs, rand.Reader, nil)
			},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}
