package mpc

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"repro/internal/encoding"
	"repro/internal/paillier"
	"repro/internal/transport"
)

// Slot-packed wire forms of the Multiplication Protocol. Three shapes
// cover every masked-product phase in the repository; all preserve the
// scalar semantics element-for-element (the packing equivalence harness
// in internal/core asserts identical labels and ledgers against the
// unpacked forms above):
//
//   - Grid: the HDP layout — a rows×cols grid of products where the
//     sender's scalar y_k is constant down each column (the query
//     point's k-th coordinate against every candidate). The receiver
//     packs column k across slot groups of rows, so the homomorphic
//     scalar multiplication by y_k acts on all S slots at once and BOTH
//     directions shrink from rows·cols to ⌈rows/S⌉·cols ciphertexts.
//
//   - Scatter: arbitrary per-element scalars (the arbitrary family's
//     mixed cross terms). A constant cannot multiply S different slots
//     by S different scalars, so the uplink stays one ciphertext per
//     element; the sender instead *places* each product into its slot —
//     E(x_t)^{y_t·2^{w·s}} — and multiplies S placements plus one
//     packed-mask encryption into a single reply. The reply direction
//     shrinks from n to ⌈n/S⌉ ciphertexts.
//
//   - Dot: the §5 pattern — the m+2 uplink ciphertexts of E(a) are
//     already shared across all points, and the per-point replies
//     E(a·b_i + v_i) pack by slot placement like the scatter form:
//     count replies become ⌈count/S⌉.
//
// In every form exactly one side contributes the packer's bias (with
// the masks), the uplink packs raw (bias-free) values, and the slot
// width budgets the largest final value |x·y + v| — see the encoding
// package for why carries cannot occur.

// ReceiverGridMultiply is the packed form of ReceiverBatchMultiply for
// a rows×cols grid laid out row-major (xs[i·cols+k] is row i, column k)
// whose sender scalars are constant per column. It obtains the same
// u_{i,k} = x_{i,k}·y_k + v_{i,k} as the unpacked form, in
// ⌈rows/S⌉·cols ciphertexts each way.
func ReceiverGridMultiply(conn transport.Conn, key *paillier.PrivateKey, xs []int64, rows, cols int, pk *encoding.Packer, random io.Reader, pool *paillier.Pool) ([]*big.Int, error) {
	if rows < 1 || cols < 1 || rows*cols != len(xs) {
		return nil, fmt.Errorf("mpc: grid %d×%d does not hold %d values", rows, cols, len(xs))
	}
	if random == nil {
		random = rand.Reader
	}
	groups := pk.Groups(rows)
	plains := make([]*big.Int, groups*cols)
	for g := 0; g < groups; g++ {
		n := pk.GroupLen(rows, g)
		for k := 0; k < cols; k++ {
			vals := make([]*big.Int, n)
			for s := 0; s < n; s++ {
				vals[s] = big.NewInt(xs[(g*pk.Slots()+s)*cols+k])
			}
			// Raw (bias-free): the sender's packed masks carry the bias.
			packed, err := pk.PackRaw(vals)
			if err != nil {
				return nil, fmt.Errorf("mpc: packing grid column %d group %d: %w", k, g, err)
			}
			plains[g*cols+k] = packed
		}
	}
	cts, err := key.EncryptBatch(pool, random, plains)
	if err != nil {
		return nil, fmt.Errorf("mpc: encrypting packed xs: %w", err)
	}
	if err := transport.SendMsg(conn, transport.NewBuilder().PutBigs(cts)); err != nil {
		return nil, fmt.Errorf("mpc: packed receiver send: %w", err)
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return nil, fmt.Errorf("mpc: packed receiver recv: %w", err)
	}
	replies := r.Bigs()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if len(replies) != groups*cols {
		return nil, fmt.Errorf("%w: sent %d packed, got %d", ErrLengthMismatch, groups*cols, len(replies))
	}
	packedUs, err := key.DecryptBatch(pool, replies)
	if err != nil {
		return nil, fmt.Errorf("mpc: decrypting packed us: %w", err)
	}
	us := make([]*big.Int, rows*cols)
	for g := 0; g < groups; g++ {
		n := pk.GroupLen(rows, g)
		for k := 0; k < cols; k++ {
			slots, err := pk.Unpack(packedUs[g*cols+k], n)
			if err != nil {
				return nil, fmt.Errorf("mpc: unpacking grid column %d group %d: %w", k, g, err)
			}
			for s, u := range slots {
				us[(g*pk.Slots()+s)*cols+k] = u
			}
		}
	}
	return us, nil
}

// SenderGridMultiply is the sending half of ReceiverGridMultiply: ys
// holds the cols column scalars, vs the rows·cols row-major masks.
func SenderGridMultiply(conn transport.Conn, pub *paillier.PublicKey, ys []int64, vs []*big.Int, rows, cols int, pk *encoding.Packer, random io.Reader, pool *paillier.Pool) error {
	if len(ys) != cols {
		return fmt.Errorf("%w: %d column scalars for %d columns", ErrLengthMismatch, len(ys), cols)
	}
	if rows < 1 || cols < 1 || rows*cols != len(vs) {
		return fmt.Errorf("mpc: grid %d×%d does not hold %d masks", rows, cols, len(vs))
	}
	if random == nil {
		random = rand.Reader
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return fmt.Errorf("mpc: packed sender recv: %w", err)
	}
	cts := r.Bigs()
	if r.Err() != nil {
		return r.Err()
	}
	groups := pk.Groups(rows)
	if len(cts) != groups*cols {
		return fmt.Errorf("%w: received %d packed, expect %d", ErrLengthMismatch, len(cts), groups*cols)
	}
	// Masks pack with the bias — the one bias contribution per slot.
	maskPlains := make([]*big.Int, groups*cols)
	for g := 0; g < groups; g++ {
		n := pk.GroupLen(rows, g)
		for k := 0; k < cols; k++ {
			vals := make([]*big.Int, n)
			for s := 0; s < n; s++ {
				vals[s] = vs[(g*pk.Slots()+s)*cols+k]
			}
			packed, err := pk.Pack(vals)
			if err != nil {
				return fmt.Errorf("mpc: packing masks column %d group %d: %w", k, g, err)
			}
			maskPlains[g*cols+k] = packed
		}
	}
	masks, err := pub.EncryptBatch(pool, random, maskPlains)
	if err != nil {
		return fmt.Errorf("mpc: encrypting packed masks: %w", err)
	}
	replies := make([]*big.Int, groups*cols)
	if err := paillier.ParallelFor(pool, groups*cols, func(j int) error {
		// One scalar multiplication scales all S slots of the column by
		// y_k; the packed mask then biases and masks every slot.
		prod, err := pub.Mul(cts[j], big.NewInt(ys[j%cols]))
		if err != nil {
			return fmt.Errorf("mpc: packed homomorphic multiply [%d]: %w", j, err)
		}
		u, err := pub.Add(prod, masks[j])
		if err != nil {
			return fmt.Errorf("mpc: packed homomorphic add [%d]: %w", j, err)
		}
		replies[j] = u
		return nil
	}); err != nil {
		return err
	}
	return transport.SendMsg(conn, transport.NewBuilder().PutBigs(replies))
}

// ReceiverScatterMultiply is the packed form of ReceiverBatchMultiply
// for arbitrary per-element sender scalars: the uplink stays one
// ciphertext per element (a packed uplink would force one shared scalar
// per slot group), the replies arrive packed as ⌈n/S⌉ ciphertexts.
func ReceiverScatterMultiply(conn transport.Conn, key *paillier.PrivateKey, xs []int64, pk *encoding.Packer, random io.Reader, pool *paillier.Pool) ([]*big.Int, error) {
	if random == nil {
		random = rand.Reader
	}
	cts, err := key.EncryptInt64Batch(pool, random, xs)
	if err != nil {
		return nil, fmt.Errorf("mpc: encrypting xs: %w", err)
	}
	if err := transport.SendMsg(conn, transport.NewBuilder().PutBigs(cts)); err != nil {
		return nil, fmt.Errorf("mpc: scatter receiver send: %w", err)
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return nil, fmt.Errorf("mpc: scatter receiver recv: %w", err)
	}
	replies := r.Bigs()
	if r.Err() != nil {
		return nil, r.Err()
	}
	groups := pk.Groups(len(xs))
	if len(replies) != groups {
		return nil, fmt.Errorf("%w: sent %d, got %d packed replies (want %d)", ErrLengthMismatch, len(xs), len(replies), groups)
	}
	packedUs, err := key.DecryptBatch(pool, replies)
	if err != nil {
		return nil, fmt.Errorf("mpc: decrypting packed us: %w", err)
	}
	us := make([]*big.Int, len(xs))
	for g, pv := range packedUs {
		slots, err := pk.Unpack(pv, pk.GroupLen(len(xs), g))
		if err != nil {
			return nil, fmt.Errorf("mpc: unpacking reply group %d: %w", g, err)
		}
		for s, u := range slots {
			us[g*pk.Slots()+s] = u
		}
	}
	return us, nil
}

// SenderScatterMultiply is the sending half of ReceiverScatterMultiply:
// E(x_t)^{y_t·2^{w·s}} places x_t·y_t into slot s of its group's reply,
// and one packed-mask encryption supplies every slot's v_t and bias.
func SenderScatterMultiply(conn transport.Conn, pub *paillier.PublicKey, ys []int64, vs []*big.Int, pk *encoding.Packer, random io.Reader, pool *paillier.Pool) error {
	if len(ys) != len(vs) {
		return fmt.Errorf("%w: %d multiplicands, %d masks", ErrLengthMismatch, len(ys), len(vs))
	}
	if random == nil {
		random = rand.Reader
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return fmt.Errorf("mpc: scatter sender recv: %w", err)
	}
	cts := r.Bigs()
	if r.Err() != nil {
		return r.Err()
	}
	if len(cts) != len(ys) {
		return fmt.Errorf("%w: received %d, hold %d", ErrLengthMismatch, len(cts), len(ys))
	}
	groups := pk.Groups(len(ys))
	maskPlains := make([]*big.Int, groups)
	for g := range maskPlains {
		n := pk.GroupLen(len(ys), g)
		packed, err := pk.Pack(vs[g*pk.Slots() : g*pk.Slots()+n])
		if err != nil {
			return fmt.Errorf("mpc: packing masks group %d: %w", g, err)
		}
		maskPlains[g] = packed
	}
	masks, err := pub.EncryptBatch(pool, random, maskPlains)
	if err != nil {
		return fmt.Errorf("mpc: encrypting packed masks: %w", err)
	}
	replies := make([]*big.Int, groups)
	if err := paillier.ParallelFor(pool, groups, func(g int) error {
		acc := masks[g]
		for s := 0; s < pk.GroupLen(len(ys), g); s++ {
			t := g*pk.Slots() + s
			if ys[t] == 0 {
				continue // slot keeps v_t + bias
			}
			term, err := pub.Mul(cts[t], pk.ShiftInt64(ys[t], s))
			if err != nil {
				return fmt.Errorf("mpc: scatter homomorphic multiply [%d]: %w", t, err)
			}
			if acc, err = pub.Add(acc, term); err != nil {
				return fmt.Errorf("mpc: scatter homomorphic add [%d]: %w", t, err)
			}
		}
		replies[g] = acc
		return nil
	}); err != nil {
		return err
	}
	return transport.SendMsg(conn, transport.NewBuilder().PutBigs(replies))
}

// ReceiverDotManyPacked is ReceiverDotMany with packed replies: the
// E(a) uplink is unchanged (already m+2 ciphertexts shared across all
// points), the count masked dot products arrive as ⌈count/S⌉.
func ReceiverDotManyPacked(conn transport.Conn, key *paillier.PrivateKey, a []int64, count int, pk *encoding.Packer, random io.Reader, pool *paillier.Pool) ([]*big.Int, error) {
	if count < 1 {
		return nil, fmt.Errorf("mpc: count %d < 1", count)
	}
	if random == nil {
		random = rand.Reader
	}
	cts, err := key.EncryptInt64Batch(pool, random, a)
	if err != nil {
		return nil, fmt.Errorf("mpc: encrypting a: %w", err)
	}
	msg := transport.NewBuilder().PutUint(uint64(count)).PutBigs(cts)
	if err := transport.SendMsg(conn, msg); err != nil {
		return nil, fmt.Errorf("mpc: packed dot send: %w", err)
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return nil, fmt.Errorf("mpc: packed dot recv: %w", err)
	}
	replies := r.Bigs()
	if r.Err() != nil {
		return nil, r.Err()
	}
	groups := pk.Groups(count)
	if len(replies) != groups {
		return nil, fmt.Errorf("%w: want %d packed dot products, got %d", ErrLengthMismatch, groups, len(replies))
	}
	packedUs, err := key.DecryptBatch(pool, replies)
	if err != nil {
		return nil, fmt.Errorf("mpc: decrypting packed us: %w", err)
	}
	us := make([]*big.Int, count)
	for g, pv := range packedUs {
		slots, err := pk.Unpack(pv, pk.GroupLen(count, g))
		if err != nil {
			return nil, fmt.Errorf("mpc: unpacking dot group %d: %w", g, err)
		}
		for s, u := range slots {
			us[g*pk.Slots()+s] = u
		}
	}
	return us, nil
}

// SenderDotManyPacked is the sending half of ReceiverDotManyPacked:
// slot s of group g accumulates Π_k E(a_k)^{b_ik·2^{w·s}} — the dot
// product placed into its slot — over one packed-mask encryption.
// SenderDotManyPackedRetain is the wire-compatible variant that also
// returns the per-point dot ciphertexts for later derived comparisons.
func SenderDotManyPacked(conn transport.Conn, pub *paillier.PublicKey, bs [][]int64, vs []*big.Int, pk *encoding.Packer, random io.Reader, pool *paillier.Pool) error {
	if len(bs) != len(vs) {
		return fmt.Errorf("%w: %d vectors, %d masks", ErrLengthMismatch, len(bs), len(vs))
	}
	if random == nil {
		random = rand.Reader
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return fmt.Errorf("mpc: packed dot sender recv: %w", err)
	}
	count := int(r.Uint())
	cts := r.Bigs()
	if r.Err() != nil {
		return r.Err()
	}
	if count != len(bs) {
		return fmt.Errorf("%w: receiver expects %d dot products, sender holds %d", ErrLengthMismatch, count, len(bs))
	}
	for i, b := range bs {
		if len(b) != len(cts) {
			return fmt.Errorf("%w: vector %d has %d coordinates, receiver sent %d", ErrLengthMismatch, i, len(b), len(cts))
		}
	}
	groups := pk.Groups(len(bs))
	maskPlains := make([]*big.Int, groups)
	for g := range maskPlains {
		n := pk.GroupLen(len(bs), g)
		packed, err := pk.Pack(vs[g*pk.Slots() : g*pk.Slots()+n])
		if err != nil {
			return fmt.Errorf("mpc: packing dot masks group %d: %w", g, err)
		}
		maskPlains[g] = packed
	}
	masks, err := pub.EncryptBatch(pool, random, maskPlains)
	if err != nil {
		return fmt.Errorf("mpc: encrypting packed masks: %w", err)
	}
	replies := make([]*big.Int, groups)
	if err := paillier.ParallelFor(pool, groups, func(g int) error {
		acc := masks[g]
		for s := 0; s < pk.GroupLen(len(bs), g); s++ {
			i := g*pk.Slots() + s
			for k, ct := range cts {
				if bs[i][k] == 0 {
					continue
				}
				term, err := pub.Mul(ct, pk.Shift(big.NewInt(bs[i][k]), s))
				if err != nil {
					return fmt.Errorf("mpc: packed dot multiply [%d,%d]: %w", i, k, err)
				}
				if acc, err = pub.Add(acc, term); err != nil {
					return fmt.Errorf("mpc: packed dot add [%d,%d]: %w", i, k, err)
				}
			}
		}
		replies[g] = acc
		return nil
	}); err != nil {
		return err
	}
	return transport.SendMsg(conn, transport.NewBuilder().PutBigs(replies))
}

// SenderDotManyPackedRetain plays the exact SenderDotManyPacked wire
// role — the receiver side cannot tell them apart, and the reply group
// count is identical — but assembles each reply from retained
// per-point dot ciphertexts D_i = E(v_i)·Π_k E(a_k)^{b_ik} = E(a·b_i +
// v_i) instead of folding the dot products straight into the groups:
// group g becomes E(Pack(0…0)) · Π_s D_{g·S+s}^{2^{w·s}}, where the
// bias-only packed encryption supplies every slot's bias and the D_i
// already carry the masks. The D_i are returned, never sent; the
// caller can later hand differences of them to the comparison engine's
// derived-base batches (compare.DerivedBob), eliminating that round's
// uplink ciphertexts entirely.
func SenderDotManyPackedRetain(conn transport.Conn, pub *paillier.PublicKey, bs [][]int64, vs []*big.Int, pk *encoding.Packer, random io.Reader, pool *paillier.Pool) ([]*big.Int, error) {
	if len(bs) != len(vs) {
		return nil, fmt.Errorf("%w: %d vectors, %d masks", ErrLengthMismatch, len(bs), len(vs))
	}
	if random == nil {
		random = rand.Reader
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return nil, fmt.Errorf("mpc: packed dot sender recv: %w", err)
	}
	count := int(r.Uint())
	cts := r.Bigs()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if count != len(bs) {
		return nil, fmt.Errorf("%w: receiver expects %d dot products, sender holds %d", ErrLengthMismatch, count, len(bs))
	}
	for i, b := range bs {
		if len(b) != len(cts) {
			return nil, fmt.Errorf("%w: vector %d has %d coordinates, receiver sent %d", ErrLengthMismatch, i, len(b), len(cts))
		}
	}
	// The retained per-point ciphertexts: D_i = E(v_i)·Π_k E(a_k)^{b_ik}.
	ds := make([]*big.Int, len(bs))
	if err := func() error {
		evs, err := pub.EncryptBatch(pool, random, vs)
		if err != nil {
			return fmt.Errorf("mpc: encrypting dot masks: %w", err)
		}
		return paillier.ParallelFor(pool, len(bs), func(i int) error {
			acc := evs[i]
			for k, ct := range cts {
				if bs[i][k] == 0 {
					continue
				}
				term, err := pub.Mul(ct, big.NewInt(bs[i][k]))
				if err != nil {
					return fmt.Errorf("mpc: retained dot multiply [%d,%d]: %w", i, k, err)
				}
				if acc, err = pub.Add(acc, term); err != nil {
					return fmt.Errorf("mpc: retained dot add [%d,%d]: %w", i, k, err)
				}
			}
			ds[i] = acc
			return nil
		})
	}(); err != nil {
		return nil, err
	}
	// Bias-only packed encryptions: the D_i already carry the masks, so
	// the wire groups only add each slot's bias (Pack of zeros).
	groups := pk.Groups(len(bs))
	biasPlains := make([]*big.Int, groups)
	for g := range biasPlains {
		n := pk.GroupLen(len(bs), g)
		zeros := make([]*big.Int, n)
		for s := range zeros {
			zeros[s] = big.NewInt(0)
		}
		packed, err := pk.Pack(zeros)
		if err != nil {
			return nil, fmt.Errorf("mpc: packing bias group %d: %w", g, err)
		}
		biasPlains[g] = packed
	}
	biases, err := pub.EncryptBatch(pool, random, biasPlains)
	if err != nil {
		return nil, fmt.Errorf("mpc: encrypting bias groups: %w", err)
	}
	replies := make([]*big.Int, groups)
	if err := paillier.ParallelFor(pool, groups, func(g int) error {
		acc := biases[g]
		for s := 0; s < pk.GroupLen(len(bs), g); s++ {
			i := g*pk.Slots() + s
			term, err := pub.Mul(ds[i], pk.Shift(big.NewInt(1), s))
			if err != nil {
				return fmt.Errorf("mpc: retained dot shift [%d]: %w", i, err)
			}
			if acc, err = pub.Add(acc, term); err != nil {
				return fmt.Errorf("mpc: retained dot fold [%d]: %w", i, err)
			}
		}
		replies[g] = acc
		return nil
	}); err != nil {
		return nil, err
	}
	if err := transport.SendMsg(conn, transport.NewBuilder().PutBigs(replies)); err != nil {
		return nil, err
	}
	return ds, nil
}
