// Package mpc implements the paper's Multiplication Protocol (§4.1,
// Algorithm 2) and the two derived forms the DBSCAN protocols need:
//
//   - Multiply: the receiver holds x (and the Paillier key pair) and
//     obtains u = x·y + v, where y and the mask v belong to the sender.
//   - BatchMultiply: m independent multiplications sharing one message
//     round; this is how the horizontal distance protocol (HDP, §4.2)
//     computes its per-coordinate masked products with O(c1·m) bits.
//   - Dot: the secret-shared dot product of §5, u = a·b + v, used by the
//     enhanced protocol to share Dist²(A, B_i) between the parties with a
//     single ciphertext per point.
//
// All batch forms route their Paillier arithmetic through the parallel
// layer (paillier.EncryptBatch / DecryptSignedBatch / ParallelFor) via an
// explicit *paillier.Pool handle, so a batch of m instances costs one
// round trip and m/workers sequential modular exponentiations. A server
// process holding many sessions passes its shared bounded pool; a nil
// pool keeps the per-call GOMAXPROCS fan-out.
//
// Fidelity note (documented in DESIGN.md): Algorithm 2 step 3 literally
// says Alice sends the encryption nonce r to Bob. Publishing a Paillier
// nonce lets the peer invert the ciphertext (x = (c·r^{−n} − 1)/n for
// g = n+1), which would void the protocol's own privacy claim, so — as in
// the correctness proof's intent — nonces here stay private and every
// encryption is fresh.
package mpc

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/paillier"
	"repro/internal/transport"
)

// ErrLengthMismatch reports that the two parties supplied vectors of
// different lengths.
var ErrLengthMismatch = errors.New("mpc: parties supplied different vector lengths")

// ReceiverMultiply runs the receiving half of Algorithm 2: the caller
// holds x and the key pair, and obtains u = x·y + v.
func ReceiverMultiply(conn transport.Conn, key *paillier.PrivateKey, x int64, random io.Reader) (*big.Int, error) {
	us, err := ReceiverBatchMultiply(conn, key, []int64{x}, random, nil)
	if err != nil {
		return nil, err
	}
	return us[0], nil
}

// SenderMultiply runs the sending half of Algorithm 2 with a caller-chosen
// mask v (the HDP zero-sum masks need exactly this control).
func SenderMultiply(conn transport.Conn, pub *paillier.PublicKey, y int64, v *big.Int, random io.Reader) error {
	return SenderBatchMultiply(conn, pub, []int64{y}, []*big.Int{v}, random, nil)
}

// ReceiverBatchMultiply performs m independent multiplications in one
// round trip: the receiver holds xs and obtains u_k = xs[k]·ys[k] + vs[k].
// pool routes the Paillier arithmetic over the process-shared crypto pool
// (nil: per-call GOMAXPROCS fan-out), as on every batch form below.
func ReceiverBatchMultiply(conn transport.Conn, key *paillier.PrivateKey, xs []int64, random io.Reader, pool *paillier.Pool) ([]*big.Int, error) {
	if random == nil {
		random = rand.Reader
	}
	cts, err := key.EncryptInt64Batch(pool, random, xs)
	if err != nil {
		return nil, fmt.Errorf("mpc: encrypting xs: %w", err)
	}
	msg := transport.NewBuilder().PutBigs(cts)
	if err := transport.SendMsg(conn, msg); err != nil {
		return nil, fmt.Errorf("mpc: receiver send: %w", err)
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return nil, fmt.Errorf("mpc: receiver recv: %w", err)
	}
	replies := r.Bigs()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if len(replies) != len(xs) {
		return nil, fmt.Errorf("%w: sent %d, got %d", ErrLengthMismatch, len(xs), len(replies))
	}
	us, err := key.DecryptSignedBatch(pool, replies)
	if err != nil {
		return nil, fmt.Errorf("mpc: decrypting us: %w", err)
	}
	return us, nil
}

// SenderBatchMultiply is the sending half of ReceiverBatchMultiply: for
// each k it computes E(x_k)^{y_k} · E(v_k), i.e. an encryption of
// x_k·y_k + v_k under the receiver's key.
func SenderBatchMultiply(conn transport.Conn, pub *paillier.PublicKey, ys []int64, vs []*big.Int, random io.Reader, pool *paillier.Pool) error {
	if len(ys) != len(vs) {
		return fmt.Errorf("%w: %d multiplicands, %d masks", ErrLengthMismatch, len(ys), len(vs))
	}
	if random == nil {
		random = rand.Reader
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return fmt.Errorf("mpc: sender recv: %w", err)
	}
	cts := r.Bigs()
	if r.Err() != nil {
		return r.Err()
	}
	if len(cts) != len(ys) {
		return fmt.Errorf("%w: received %d, hold %d", ErrLengthMismatch, len(cts), len(ys))
	}
	// Masks first (sequential randomness), then the homomorphic arithmetic
	// on the worker pool.
	masks, err := pub.EncryptBatch(pool, random, vs)
	if err != nil {
		return fmt.Errorf("mpc: encrypting masks: %w", err)
	}
	replies := make([]*big.Int, len(ys))
	if err := paillier.ParallelFor(pool, len(ys), func(k int) error {
		prod, err := pub.Mul(cts[k], big.NewInt(ys[k]))
		if err != nil {
			return fmt.Errorf("mpc: homomorphic multiply [%d]: %w", k, err)
		}
		u, err := pub.Add(prod, masks[k])
		if err != nil {
			return fmt.Errorf("mpc: homomorphic add [%d]: %w", k, err)
		}
		replies[k] = u
		return nil
	}); err != nil {
		return err
	}
	return transport.SendMsg(conn, transport.NewBuilder().PutBigs(replies))
}

// ReceiverDot obtains u = a·b + v where the caller holds vector a.
// The caller sends one ciphertext per coordinate and receives one back,
// so a session that scores n sender points against the same a should use
// ReceiverDotMany instead.
func ReceiverDot(conn transport.Conn, key *paillier.PrivateKey, a []int64, random io.Reader) (*big.Int, error) {
	us, err := ReceiverDotMany(conn, key, a, 1, random, nil)
	if err != nil {
		return nil, err
	}
	return us[0], nil
}

// SenderDot is the sending half of ReceiverDot.
func SenderDot(conn transport.Conn, pub *paillier.PublicKey, b []int64, v *big.Int, random io.Reader) error {
	return SenderDotMany(conn, pub, [][]int64{b}, []*big.Int{v}, random, nil)
}

// ReceiverDotMany sends the encrypted coordinates of a once and receives
// `count` masked dot products u_i = a·b_i + v_i. This is the §5 pattern:
// Alice publishes E(a) for her extended point vector and Bob returns one
// ciphertext per point B_i, costing O(m + count) ciphertexts total.
func ReceiverDotMany(conn transport.Conn, key *paillier.PrivateKey, a []int64, count int, random io.Reader, pool *paillier.Pool) ([]*big.Int, error) {
	if count < 1 {
		return nil, fmt.Errorf("mpc: count %d < 1", count)
	}
	if random == nil {
		random = rand.Reader
	}
	cts, err := key.EncryptInt64Batch(pool, random, a)
	if err != nil {
		return nil, fmt.Errorf("mpc: encrypting a: %w", err)
	}
	msg := transport.NewBuilder().PutUint(uint64(count)).PutBigs(cts)
	if err := transport.SendMsg(conn, msg); err != nil {
		return nil, fmt.Errorf("mpc: dot send: %w", err)
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return nil, fmt.Errorf("mpc: dot recv: %w", err)
	}
	replies := r.Bigs()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if len(replies) != count {
		return nil, fmt.Errorf("%w: want %d dot products, got %d", ErrLengthMismatch, count, len(replies))
	}
	us, err := key.DecryptSignedBatch(pool, replies)
	if err != nil {
		return nil, fmt.Errorf("mpc: decrypting us: %w", err)
	}
	return us, nil
}

// SenderDotMany is the sending half of ReceiverDotMany: bs[i] is the i-th
// vector, vs[i] its mask. All vectors must match the receiver's dimension.
func SenderDotMany(conn transport.Conn, pub *paillier.PublicKey, bs [][]int64, vs []*big.Int, random io.Reader, pool *paillier.Pool) error {
	if len(bs) != len(vs) {
		return fmt.Errorf("%w: %d vectors, %d masks", ErrLengthMismatch, len(bs), len(vs))
	}
	if random == nil {
		random = rand.Reader
	}
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return fmt.Errorf("mpc: dot sender recv: %w", err)
	}
	count := int(r.Uint())
	cts := r.Bigs()
	if r.Err() != nil {
		return r.Err()
	}
	if count != len(bs) {
		return fmt.Errorf("%w: receiver expects %d dot products, sender holds %d", ErrLengthMismatch, count, len(bs))
	}
	for i, b := range bs {
		if len(b) != len(cts) {
			return fmt.Errorf("%w: vector %d has %d coordinates, receiver sent %d", ErrLengthMismatch, i, len(b), len(cts))
		}
	}
	// Masks first (sequential randomness), then one worker-pool task per
	// output ciphertext: E(a·b_i + v_i) = Π_k E(a_k)^{b_ik} · E(v_i).
	masks, err := pub.EncryptBatch(pool, random, vs)
	if err != nil {
		return fmt.Errorf("mpc: encrypting masks: %w", err)
	}
	replies := make([]*big.Int, len(bs))
	if err := paillier.ParallelFor(pool, len(bs), func(i int) error {
		acc := masks[i]
		for k, ct := range cts {
			if bs[i][k] == 0 {
				continue
			}
			term, err := pub.Mul(ct, big.NewInt(bs[i][k]))
			if err != nil {
				return fmt.Errorf("mpc: homomorphic multiply [%d,%d]: %w", i, k, err)
			}
			acc, err = pub.Add(acc, term)
			if err != nil {
				return fmt.Errorf("mpc: homomorphic add [%d,%d]: %w", i, k, err)
			}
		}
		replies[i] = acc
		return nil
	}); err != nil {
		return err
	}
	return transport.SendMsg(conn, transport.NewBuilder().PutBigs(replies))
}

// RandomMask draws a uniform mask in [0, bound) for sender-side use.
func RandomMask(random io.Reader, bound *big.Int) (*big.Int, error) {
	if random == nil {
		random = rand.Reader
	}
	if bound.Sign() <= 0 {
		return nil, fmt.Errorf("mpc: mask bound must be positive")
	}
	return rand.Int(random, bound)
}

// ZeroSumMasks draws m−1 uniform values in (−bound, bound) and sets the
// last so the total is zero — the r_1 + … + r_m = 0 masks of HDP (§4.2).
func ZeroSumMasks(random io.Reader, m int, bound *big.Int) ([]*big.Int, error) {
	if m < 1 {
		return nil, fmt.Errorf("mpc: need at least one mask")
	}
	if bound.Sign() <= 0 {
		return nil, fmt.Errorf("mpc: mask bound must be positive")
	}
	if random == nil {
		random = rand.Reader
	}
	masks := make([]*big.Int, m)
	sum := new(big.Int)
	double := new(big.Int).Lsh(bound, 1)
	for i := 0; i < m-1; i++ {
		r, err := rand.Int(random, double)
		if err != nil {
			return nil, err
		}
		r.Sub(r, bound) // uniform in [−bound, bound)
		masks[i] = r
		sum.Add(sum, r)
	}
	masks[m-1] = new(big.Int).Neg(sum)
	return masks, nil
}
