// Package yao implements Yao's Millionaires' Problem Protocol (YMPP)
// exactly as specified in Algorithm 1 of the reproduced paper — Yao's
// original 1982 protocol. Alice holds i and Bob holds j, both in [1, n0];
// the parties learn whether i < j and nothing else.
//
// The protocol requires a trapdoor permutation that Bob can evaluate under
// Alice's public key (the paper's Ea/Da); this package provides textbook
// (unpadded) RSA for that role, which is the classical instantiation. Raw
// RSA is malleable and must never be used for general encryption; inside
// YMPP it is used only as the one-way trapdoor function the protocol
// requires.
package yao

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

var one = big.NewInt(1)

// RSAKey is a textbook RSA key pair with CRT acceleration for Da.
type RSAKey struct {
	RSAPublicKey
	D *big.Int // private exponent

	p, q, dp, dq, qInv *big.Int // CRT decryption values
}

// RSAPublicKey is the Ea side of the trapdoor: N and e.
type RSAPublicKey struct {
	N *big.Int
	E *big.Int
}

// MinRSABits is the smallest accepted modulus; test keys use 256 bits.
const MinRSABits = 256

// GenerateRSAKey creates a textbook RSA key pair for YMPP.
func GenerateRSAKey(random io.Reader, bits int) (*RSAKey, error) {
	if bits < MinRSABits {
		return nil, fmt.Errorf("yao: RSA key size %d below minimum %d", bits, MinRSABits)
	}
	if random == nil {
		random = rand.Reader
	}
	e := big.NewInt(65537)
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("yao: generating p: %w", err)
		}
		q, err := rand.Prime(random, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("yao: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		if new(big.Int).GCD(nil, nil, e, phi).Cmp(one) != 0 {
			continue
		}
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue
		}
		qInv := new(big.Int).ModInverse(q, p)
		if qInv == nil {
			continue
		}
		return &RSAKey{
			RSAPublicKey: RSAPublicKey{N: new(big.Int).Mul(p, q), E: e},
			D:            d,
			p:            p,
			q:            q,
			dp:           new(big.Int).Mod(d, pm1),
			dq:           new(big.Int).Mod(d, qm1),
			qInv:         qInv,
		}, nil
	}
}

// Encrypt evaluates Ea(x) = x^e mod N.
func (pk *RSAPublicKey) Encrypt(x *big.Int) *big.Int {
	return new(big.Int).Exp(x, pk.E, pk.N)
}

// Decrypt evaluates Da(y) = y^d mod N using the CRT.
func (k *RSAKey) Decrypt(y *big.Int) *big.Int {
	// m1 = y^dp mod p, m2 = y^dq mod q, h = qInv·(m1−m2) mod p,
	// m = m2 + h·q.
	m1 := new(big.Int).Exp(y, k.dp, k.p)
	m2 := new(big.Int).Exp(y, k.dq, k.q)
	h := new(big.Int).Sub(m1, m2)
	h.Mul(h, k.qInv)
	h.Mod(h, k.p)
	m := new(big.Int).Mul(h, k.q)
	m.Add(m, m2)
	return m.Mod(m, k.N)
}

// decryptSlow is the non-CRT path, kept for cross-checks in tests.
func (k *RSAKey) decryptSlow(y *big.Int) *big.Int {
	return new(big.Int).Exp(y, k.D, k.N)
}

// Bits returns the modulus size in bits.
func (pk *RSAPublicKey) Bits() int { return pk.N.BitLen() }

// MarshalRSAPublicKey serializes (N, e) for the wire.
func MarshalRSAPublicKey(pk *RSAPublicKey) ([]byte, []byte) {
	return pk.N.Bytes(), pk.E.Bytes()
}

// UnmarshalRSAPublicKey reverses MarshalRSAPublicKey.
func UnmarshalRSAPublicKey(nb, eb []byte) (*RSAPublicKey, error) {
	n := new(big.Int).SetBytes(nb)
	e := new(big.Int).SetBytes(eb)
	if n.BitLen() < MinRSABits {
		return nil, fmt.Errorf("yao: unmarshaled modulus too small (%d bits)", n.BitLen())
	}
	if e.Cmp(big.NewInt(3)) < 0 {
		return nil, fmt.Errorf("yao: invalid public exponent")
	}
	return &RSAPublicKey{N: n, E: e}, nil
}
