package yao

import (
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/transport"
)

var (
	keyOnce sync.Once
	key     *RSAKey
)

func testRSAKey(t testing.TB) *RSAKey {
	t.Helper()
	keyOnce.Do(func() {
		k, err := GenerateRSAKey(rand.Reader, 256)
		if err != nil {
			t.Fatalf("GenerateRSAKey: %v", err)
		}
		key = k
	})
	return key
}

func TestRSAKeyRejectsSmall(t *testing.T) {
	if _, err := GenerateRSAKey(rand.Reader, 128); err == nil {
		t.Error("want error for tiny key")
	}
}

func TestRSAEncryptDecryptInverse(t *testing.T) {
	k := testRSAKey(t)
	for i := 0; i < 25; i++ {
		x, err := rand.Int(rand.Reader, k.N)
		if err != nil {
			t.Fatal(err)
		}
		y := k.Encrypt(x)
		if got := k.Decrypt(y); got.Cmp(x) != 0 {
			t.Fatalf("Da(Ea(%v)) = %v", x, got)
		}
	}
}

func TestRSACRTMatchesSlowPath(t *testing.T) {
	k := testRSAKey(t)
	for i := 0; i < 10; i++ {
		y, err := rand.Int(rand.Reader, k.N)
		if err != nil {
			t.Fatal(err)
		}
		if k.Decrypt(y).Cmp(k.decryptSlow(y)) != 0 {
			t.Fatal("CRT decryption diverges from plain exponentiation")
		}
	}
}

func TestRSAPublicKeyMarshalRoundTrip(t *testing.T) {
	k := testRSAKey(t)
	nb, eb := MarshalRSAPublicKey(&k.RSAPublicKey)
	pk, err := UnmarshalRSAPublicKey(nb, eb)
	if err != nil {
		t.Fatal(err)
	}
	x := big.NewInt(987654321)
	if k.Decrypt(pk.Encrypt(x)).Cmp(x) != 0 {
		t.Error("unmarshaled key does not round trip")
	}
}

func TestUnmarshalRSAPublicKeyRejects(t *testing.T) {
	if _, err := UnmarshalRSAPublicKey(big.NewInt(99).Bytes(), big.NewInt(65537).Bytes()); err == nil {
		t.Error("want error for tiny modulus")
	}
	k := testRSAKey(t)
	nb, _ := MarshalRSAPublicKey(&k.RSAPublicKey)
	if _, err := UnmarshalRSAPublicKey(nb, big.NewInt(1).Bytes()); err == nil {
		t.Error("want error for exponent 1")
	}
}

// runYMPP executes one protocol instance in-process and returns both
// parties' conclusions.
func runYMPP(t testing.TB, i, j, n0 int64) (aliceGot, bobGot bool) {
	t.Helper()
	k := testRSAKey(t)
	var aRes, bRes bool
	err := transport.Run2(
		func(c transport.Conn) error {
			var err error
			aRes, err = AliceCompare(c, k, i, n0, rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			var err error
			bRes, err = BobCompare(c, &k.RSAPublicKey, j, n0, rand.Reader)
			return err
		},
	)
	if err != nil {
		t.Fatalf("YMPP(i=%d, j=%d, n0=%d): %v", i, j, n0, err)
	}
	return aRes, bRes
}

func TestYMPPExhaustiveSmallDomain(t *testing.T) {
	const n0 = 9
	for i := int64(1); i <= n0; i++ {
		for j := int64(1); j <= n0; j++ {
			a, b := runYMPP(t, i, j, n0)
			want := i < j
			if a != want || b != want {
				t.Fatalf("YMPP(i=%d, j=%d): alice=%v bob=%v want %v", i, j, a, b, want)
			}
		}
	}
}

func TestYMPPBoundaries(t *testing.T) {
	cases := []struct {
		i, j, n0 int64
		want     bool
	}{
		{1, 1, 1, false},
		{1, 2, 2, true},
		{2, 1, 2, false},
		{1, 64, 64, true},
		{64, 64, 64, false},
		{64, 1, 64, false},
	}
	for _, tc := range cases {
		a, b := runYMPP(t, tc.i, tc.j, tc.n0)
		if a != tc.want || b != tc.want {
			t.Errorf("YMPP(%d,%d,n0=%d) = (%v,%v), want %v", tc.i, tc.j, tc.n0, a, b, tc.want)
		}
	}
}

func TestYMPPInputValidation(t *testing.T) {
	k := testRSAKey(t)
	conn, peer := transport.Pipe()
	defer conn.Close()
	defer peer.Close()
	if _, err := AliceCompare(conn, k, 0, 10, rand.Reader, nil); err == nil {
		t.Error("i=0 accepted")
	}
	if _, err := AliceCompare(conn, k, 11, 10, rand.Reader, nil); err == nil {
		t.Error("i>n0 accepted")
	}
	if _, err := BobCompare(conn, &k.RSAPublicKey, 5, MaxDomain+1, rand.Reader); err == nil {
		t.Error("n0 over cap accepted")
	}
}

func TestYMPPDomainMismatchDetected(t *testing.T) {
	k := testRSAKey(t)
	err := transport.Run2(
		func(c transport.Conn) error {
			_, err := AliceCompare(c, k, 3, 10, rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			_, err := BobCompare(c, &k.RSAPublicKey, 3, 12, rand.Reader)
			return err
		},
	)
	if !errors.Is(err, ErrDomainMismatch) {
		t.Errorf("err = %v, want ErrDomainMismatch", err)
	}
}

func TestLessEqWrappers(t *testing.T) {
	k := testRSAKey(t)
	const bound = 12
	for a := int64(0); a <= bound; a += 3 {
		for b := int64(0); b <= bound; b += 3 {
			var aGot, bGot bool
			err := transport.Run2(
				func(c transport.Conn) error {
					var err error
					aGot, err = AliceLessEq(c, k, a, bound, rand.Reader, nil)
					return err
				},
				func(c transport.Conn) error {
					var err error
					bGot, err = BobLessEq(c, &k.RSAPublicKey, b, bound, rand.Reader)
					return err
				},
			)
			if err != nil {
				t.Fatal(err)
			}
			want := a <= b
			if aGot != want || bGot != want {
				t.Errorf("LessEq(%d,%d) = (%v,%v), want %v", a, b, aGot, bGot, want)
			}
		}
	}
}

func TestLessWrappers(t *testing.T) {
	k := testRSAKey(t)
	const bound = 10
	for _, pair := range [][2]int64{{0, 0}, {0, 1}, {1, 0}, {5, 5}, {4, 5}, {10, 10}, {9, 10}, {10, 9}} {
		a, b := pair[0], pair[1]
		var aGot bool
		err := transport.Run2(
			func(c transport.Conn) error {
				var err error
				aGot, err = AliceLess(c, k, a, bound, rand.Reader, nil)
				return err
			},
			func(c transport.Conn) error {
				_, err := BobLess(c, &k.RSAPublicKey, b, bound, rand.Reader)
				return err
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		if aGot != (a < b) {
			t.Errorf("Less(%d,%d) = %v", a, b, aGot)
		}
	}
}

func TestWrapperInputValidation(t *testing.T) {
	k := testRSAKey(t)
	conn, peer := transport.Pipe()
	defer conn.Close()
	defer peer.Close()
	if _, err := AliceLessEq(conn, k, -1, 10, rand.Reader, nil); err == nil {
		t.Error("negative value accepted")
	}
	if _, err := BobLessEq(conn, &k.RSAPublicKey, 11, 10, rand.Reader); err == nil {
		t.Error("out-of-bound value accepted")
	}
	if _, err := AliceLess(conn, k, 11, 10, rand.Reader, nil); err == nil {
		t.Error("out-of-bound value accepted by AliceLess")
	}
	if _, err := BobLess(conn, &k.RSAPublicKey, -2, 10, rand.Reader); err == nil {
		t.Error("negative value accepted by BobLess")
	}
}

// Property test: random (a, b, bound) triples agree with plaintext ≤.
func TestYMPPProperty(t *testing.T) {
	k := testRSAKey(t)
	rng := mrand.New(mrand.NewSource(7))
	f := func() bool {
		bound := int64(rng.Intn(40) + 1)
		a := int64(rng.Intn(int(bound + 1)))
		b := int64(rng.Intn(int(bound + 1)))
		var got bool
		err := transport.Run2(
			func(c transport.Conn) error {
				var err error
				got, err = AliceLessEq(c, k, a, bound, rand.Reader, nil)
				return err
			},
			func(c transport.Conn) error {
				_, err := BobLessEq(c, &k.RSAPublicKey, b, bound, rand.Reader)
				return err
			},
		)
		return err == nil && got == (a <= b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The communication pattern must match the paper's O(c2·n0) accounting:
// Alice's round-2 message carries exactly n0 residues mod a (N/2)-bit prime.
func TestYMPPCommunicationShape(t *testing.T) {
	k := testRSAKey(t)
	ca, cb := transport.Pipe()
	ma, mb := transport.NewMeter(ca), transport.NewMeter(cb)
	const n0 = 50
	err := transport.RunPair(ma, mb,
		func(c transport.Conn) error {
			_, err := AliceCompare(c, k, 25, n0, rand.Reader, nil)
			return err
		},
		func(c transport.Conn) error {
			_, err := BobCompare(c, &k.RSAPublicKey, 25, n0, rand.Reader)
			return err
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Alice sends one message (p + n0 residues); Bob sends two (round 1,
	// result bit).
	if got := ma.Stats().MessagesSent; got != 1 {
		t.Errorf("alice sent %d messages, want 1", got)
	}
	if got := mb.Stats().MessagesSent; got != 2 {
		t.Errorf("bob sent %d messages, want 2", got)
	}
	// Residues are ≤ N/2 bits = 16 bytes for the 256-bit test key; with
	// framing overhead the Alice message must stay within ~(n0+1)·(16+3).
	maxBytes := int64((n0 + 1) * (16 + 3))
	if got := ma.Stats().BytesSent; got > maxBytes {
		t.Errorf("alice sent %d bytes, want ≤ %d (O(c2·n0))", got, maxBytes)
	}
}

func BenchmarkYMPPDomain256(b *testing.B) {
	k := testRSAKey(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := transport.Run2(
			func(c transport.Conn) error {
				_, err := AliceCompare(c, k, 100, 256, rand.Reader, nil)
				return err
			},
			func(c transport.Conn) error {
				_, err := BobCompare(c, &k.RSAPublicKey, 200, 256, rand.Reader)
				return err
			},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}
