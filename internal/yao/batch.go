package yao

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"repro/internal/paillier"
	"repro/internal/transport"
)

// Batched YMPP: `count` independent Algorithm 1 instances over one shared
// domain n0 with the per-instance payloads packed into single frames, so a
// whole batch costs the same three message rounds as one comparison:
//
//	Bob → Alice: n0 ‖ count ‖ (k_1 − j_1 + 1) … (k_count − j_count + 1)
//	Alice → Bob: p_1 ‖ w_1,1..w_1,n0 ‖ … ‖ p_count ‖ w_count,1..w_count,n0
//	Bob → Alice: result bits
//
// Local work is unchanged — O(count·n0) RSA decryptions, spread over the
// shared crypto pool by decryptRange — only the round count drops from
// 3·count messages to 3.

// AliceCompareBatch runs Alice's side of `len(is)` batched Algorithm 1
// instances; is[t] pairs with Bob's js[t]. Returns i_t < j_t for every t.
func AliceCompareBatch(conn transport.Conn, key *RSAKey, is []int64, n0 int64, random io.Reader, pool *paillier.Pool) ([]bool, error) {
	for t, i := range is {
		if err := checkDomain(i, n0); err != nil {
			return nil, fmt.Errorf("yao: batch[%d]: %w", t, err)
		}
	}
	if len(is) == 0 {
		return nil, nil
	}
	if random == nil {
		random = rand.Reader
	}

	r, err := transport.RecvMsg(conn)
	if err != nil {
		return nil, fmt.Errorf("yao: alice recv batch round 1: %w", err)
	}
	bobN0 := int64(r.Uint())
	count := int(r.Uint())
	bases := r.Bigs()
	if r.Err() != nil {
		return nil, fmt.Errorf("yao: alice parse batch round 1: %w", r.Err())
	}
	if bobN0 != n0 {
		return nil, fmt.Errorf("%w: alice=%d bob=%d", ErrDomainMismatch, n0, bobN0)
	}
	if count != len(is) || len(bases) != len(is) {
		return nil, fmt.Errorf("%w: alice holds %d values, bob sent %d", ErrDomainMismatch, len(is), count)
	}

	out := transport.NewBuilder()
	for t, base := range bases {
		if base.Sign() < 0 || base.Cmp(key.N) >= 0 {
			return nil, fmt.Errorf("yao: batch[%d] round-1 value outside Z_N", t)
		}
		ys := decryptRange(pool, key, base, int(n0))
		p, zs, err := findSeparatingPrime(random, key.N.BitLen()/2, ys)
		if err != nil {
			return nil, fmt.Errorf("yao: batch[%d]: %w", t, err)
		}
		ws := make([]*big.Int, n0)
		for u := int64(1); u <= n0; u++ {
			w := new(big.Int).Set(zs[u-1])
			if u > is[t] {
				w.Add(w, one)
				if w.Cmp(p) >= 0 {
					w.Sub(w, p)
				}
			}
			ws[u-1] = w
		}
		out.PutBig(p).PutBigs(ws)
	}
	if err := transport.SendMsg(conn, out); err != nil {
		return nil, fmt.Errorf("yao: alice send batch round 2: %w", err)
	}

	res, err := transport.RecvMsg(conn)
	if err != nil {
		return nil, fmt.Errorf("yao: alice recv batch result: %w", err)
	}
	bits := res.Bools()
	if res.Err() != nil {
		return nil, res.Err()
	}
	if len(bits) != len(is) {
		return nil, fmt.Errorf("%w: got %d result bits, want %d", ErrDomainMismatch, len(bits), len(is))
	}
	return bits, nil
}

// BobCompareBatch runs Bob's side of AliceCompareBatch; js[t] pairs with
// Alice's is[t]. Returns i_t < j_t for every t.
func BobCompareBatch(conn transport.Conn, pub *RSAPublicKey, js []int64, n0 int64, random io.Reader) ([]bool, error) {
	for t, j := range js {
		if err := checkDomain(j, n0); err != nil {
			return nil, fmt.Errorf("yao: batch[%d]: %w", t, err)
		}
	}
	if len(js) == 0 {
		return nil, nil
	}
	if random == nil {
		random = rand.Reader
	}

	xs := make([]*big.Int, len(js))
	msg := transport.NewBuilder().PutUint(uint64(n0)).PutUint(uint64(len(js)))
	bases := make([]*big.Int, len(js))
	for t, j := range js {
		x, err := rand.Int(random, pub.N)
		if err != nil {
			return nil, fmt.Errorf("yao: sampling x[%d]: %w", t, err)
		}
		xs[t] = x
		k := pub.Encrypt(x)
		base := new(big.Int).Sub(k, big.NewInt(j-1))
		base.Mod(base, pub.N)
		bases[t] = base
	}
	msg.PutBigs(bases)
	if err := transport.SendMsg(conn, msg); err != nil {
		return nil, fmt.Errorf("yao: bob send batch round 1: %w", err)
	}

	r, err := transport.RecvMsg(conn)
	if err != nil {
		return nil, fmt.Errorf("yao: bob recv batch round 2: %w", err)
	}
	bits := make([]bool, len(js))
	for t, j := range js {
		p := r.Big()
		ws := r.Bigs()
		if r.Err() != nil {
			return nil, fmt.Errorf("yao: bob parse batch round 2 [%d]: %w", t, r.Err())
		}
		if int64(len(ws)) != n0 {
			return nil, fmt.Errorf("%w: batch[%d] has %d numbers, want %d", ErrDomainMismatch, t, len(ws), n0)
		}
		if p.Sign() <= 0 {
			return nil, fmt.Errorf("yao: batch[%d] invalid prime from alice", t)
		}
		xModP := new(big.Int).Mod(xs[t], p)
		bits[t] = ws[j-1].Cmp(xModP) != 0
	}
	if err := transport.SendMsg(conn, transport.NewBuilder().PutBools(bits)); err != nil {
		return nil, fmt.Errorf("yao: bob send batch result: %w", err)
	}
	return bits, nil
}

// shiftAll embeds a batch of non-negative values into Algorithm 1's
// domain, validating the original [0, bound] range.
func shiftAll(vs []int64, bound, delta int64) ([]int64, error) {
	out := make([]int64, len(vs))
	for t, v := range vs {
		if v < 0 || v > bound {
			return nil, fmt.Errorf("yao: batch[%d] value %d outside [0,%d]", t, v, bound)
		}
		out[t] = v + delta
	}
	return out, nil
}

// AliceLessEqBatch decides a_t ≤ b_t for every a_t ∈ [0, bound]; pairs
// with BobLessEqBatch. Same embedding as AliceLessEq.
func AliceLessEqBatch(conn transport.Conn, key *RSAKey, as []int64, bound int64, random io.Reader, pool *paillier.Pool) ([]bool, error) {
	is, err := shiftAll(as, bound, 1)
	if err != nil {
		return nil, err
	}
	return AliceCompareBatch(conn, key, is, bound+2, random, pool)
}

// BobLessEqBatch is the Bob half of AliceLessEqBatch.
func BobLessEqBatch(conn transport.Conn, pub *RSAPublicKey, bs []int64, bound int64, random io.Reader) ([]bool, error) {
	js, err := shiftAll(bs, bound, 2)
	if err != nil {
		return nil, err
	}
	return BobCompareBatch(conn, pub, js, bound+2, random)
}

// AliceLessBatch decides a_t < b_t strictly; pairs with BobLessBatch.
func AliceLessBatch(conn transport.Conn, key *RSAKey, as []int64, bound int64, random io.Reader, pool *paillier.Pool) ([]bool, error) {
	is, err := shiftAll(as, bound, 1)
	if err != nil {
		return nil, err
	}
	return AliceCompareBatch(conn, key, is, bound+1, random, pool)
}

// BobLessBatch is the Bob half of AliceLessBatch.
func BobLessBatch(conn transport.Conn, pub *RSAPublicKey, bs []int64, bound int64, random io.Reader) ([]bool, error) {
	js, err := shiftAll(bs, bound, 1)
	if err != nil {
		return nil, err
	}
	return BobCompareBatch(conn, pub, js, bound+1, random)
}
