package yao

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"repro/internal/paillier"
	"repro/internal/transport"
)

// The YMPP wire protocol follows Algorithm 1 step by step:
//
//	Bob → Alice: n0 ‖ (k − j + 1 mod N)         where k = Ea(x)
//	Alice → Bob: p ‖ w_1 … w_n0                  w_u = z_u (+1 if u > i) mod p
//	Bob → Alice: result bit (step 7: "Bob tells Alice what the conclusion is")
//
// Communication is O(c2·n0) bits with c2 = |p| = N/2 bits, matching the
// complexity the paper charges per YMPP invocation.

// MaxDomain caps n0 to keep a corrupted header from forcing absurd
// allocations. The paper's analysis already makes n0 the dominant cost, so
// legitimate domains stay far below this.
const MaxDomain = 1 << 22

// maxPrimeAttempts bounds the retry loop of Algorithm 1 step 4.
const maxPrimeAttempts = 256

// ErrDomainMismatch reports that the two parties disagreed on n0.
var ErrDomainMismatch = errors.New("yao: parties disagree on comparison domain n0")

func checkDomain(v, n0 int64) error {
	if n0 < 1 || n0 > MaxDomain {
		return fmt.Errorf("yao: domain n0=%d out of range [1,%d]", n0, int64(MaxDomain))
	}
	if v < 1 || v > n0 {
		return fmt.Errorf("yao: input %d outside [1,%d]", v, n0)
	}
	return nil
}

// AliceCompare runs Alice's side of Algorithm 1. Alice holds i ∈ [1, n0]
// and the RSA key pair. Returns whether i < j. pool bounds the local
// decryption fan-out (nil: GOMAXPROCS); only Alice does O(n0) local
// work, so Bob's half takes no pool handle.
func AliceCompare(conn transport.Conn, key *RSAKey, i, n0 int64, random io.Reader, pool *paillier.Pool) (bool, error) {
	if err := checkDomain(i, n0); err != nil {
		return false, err
	}
	if random == nil {
		random = rand.Reader
	}

	// Step 2 (receive): Bob's k − j + 1.
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return false, fmt.Errorf("yao: alice recv round 1: %w", err)
	}
	bobN0 := int64(r.Uint())
	base := r.Big()
	if r.Err() != nil {
		return false, fmt.Errorf("yao: alice parse round 1: %w", r.Err())
	}
	if bobN0 != n0 {
		return false, fmt.Errorf("%w: alice=%d bob=%d", ErrDomainMismatch, n0, bobN0)
	}
	if base.Sign() < 0 || base.Cmp(key.N) >= 0 {
		return false, fmt.Errorf("yao: round-1 value outside Z_N")
	}

	// Step 3: y_u = Da(k − j + u) for u = 1..n0.
	ys := decryptRange(pool, key, base, int(n0))

	// Step 4: find a prime p with all z_u = y_u mod p pairwise ≥ 2 apart
	// in the mod-p sense.
	p, zs, err := findSeparatingPrime(random, key.N.BitLen()/2, ys)
	if err != nil {
		return false, err
	}

	// Step 5: send z_1..z_i, then z_{i+1}+1 .. z_{n0}+1 (mod p).
	ws := make([]*big.Int, n0)
	for u := int64(1); u <= n0; u++ {
		w := new(big.Int).Set(zs[u-1])
		if u > i {
			w.Add(w, one)
			if w.Cmp(p) >= 0 {
				w.Sub(w, p)
			}
		}
		ws[u-1] = w
	}
	out := transport.NewBuilder().PutBig(p).PutBigs(ws)
	if err := transport.SendMsg(conn, out); err != nil {
		return false, fmt.Errorf("yao: alice send round 2: %w", err)
	}

	// Step 7: Bob tells Alice the conclusion.
	res, err := transport.RecvMsg(conn)
	if err != nil {
		return false, fmt.Errorf("yao: alice recv result: %w", err)
	}
	iLessJ := res.Bool()
	if res.Err() != nil {
		return false, res.Err()
	}
	return iLessJ, nil
}

// BobCompare runs Bob's side of Algorithm 1. Bob holds j ∈ [1, n0] and
// Alice's public key. Returns whether i < j.
func BobCompare(conn transport.Conn, pub *RSAPublicKey, j, n0 int64, random io.Reader) (bool, error) {
	if err := checkDomain(j, n0); err != nil {
		return false, err
	}
	if random == nil {
		random = rand.Reader
	}

	// Step 1: random x, k = Ea(x).
	x, err := rand.Int(random, pub.N)
	if err != nil {
		return false, fmt.Errorf("yao: sampling x: %w", err)
	}
	k := pub.Encrypt(x)

	// Step 2: send k − j + 1 mod N.
	base := new(big.Int).Sub(k, big.NewInt(j-1))
	base.Mod(base, pub.N)
	msg := transport.NewBuilder().PutUint(uint64(n0)).PutBig(base)
	if err := transport.SendMsg(conn, msg); err != nil {
		return false, fmt.Errorf("yao: bob send round 1: %w", err)
	}

	// Step 6: inspect the j-th number.
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return false, fmt.Errorf("yao: bob recv round 2: %w", err)
	}
	p := r.Big()
	ws := r.Bigs()
	if r.Err() != nil {
		return false, fmt.Errorf("yao: bob parse round 2: %w", r.Err())
	}
	if int64(len(ws)) != n0 {
		return false, fmt.Errorf("%w: got %d numbers, want %d", ErrDomainMismatch, len(ws), n0)
	}
	if p.Sign() <= 0 {
		return false, fmt.Errorf("yao: invalid prime from alice")
	}
	xModP := new(big.Int).Mod(x, p)
	// w_j == x mod p ⇒ i ≥ j, otherwise i < j.
	iLessJ := ws[j-1].Cmp(xModP) != 0

	// Step 7: tell Alice the conclusion.
	if err := transport.SendMsg(conn, transport.NewBuilder().PutBool(iLessJ)); err != nil {
		return false, fmt.Errorf("yao: bob send result: %w", err)
	}
	return iLessJ, nil
}

// decryptRange computes Da(base + t mod N) for t = 0..count−1 on the
// shared crypto pool (nil pool: GOMAXPROCS fan-out).
func decryptRange(pool *paillier.Pool, key *RSAKey, base *big.Int, count int) []*big.Int {
	ys := make([]*big.Int, count)
	_ = paillier.ParallelFor(pool, count, func(t int) error {
		v := new(big.Int).Add(base, big.NewInt(int64(t)))
		if v.Cmp(key.N) >= 0 {
			v.Sub(v, key.N)
		}
		ys[t] = key.Decrypt(v)
		return nil
	})
	return ys
}

// findSeparatingPrime implements step 4: draw random primes of the given
// bit length until all y_u mod p differ pairwise by at least 2 in the
// mod-p (circular) sense.
func findSeparatingPrime(random io.Reader, bits int, ys []*big.Int) (*big.Int, []*big.Int, error) {
	if bits < 16 {
		bits = 16
	}
	zs := make([]*big.Int, len(ys))
	sorted := make([]*big.Int, len(ys))
	for attempt := 0; attempt < maxPrimeAttempts; attempt++ {
		p, err := rand.Prime(random, bits)
		if err != nil {
			return nil, nil, fmt.Errorf("yao: generating prime: %w", err)
		}
		ok := true
		for i, y := range ys {
			zs[i] = new(big.Int).Mod(y, p)
		}
		copy(sorted, zs)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].Cmp(sorted[b]) < 0 })
		gap := new(big.Int)
		for i := 1; i < len(sorted); i++ {
			gap.Sub(sorted[i], sorted[i-1])
			if gap.Cmp(two) < 0 {
				ok = false
				break
			}
		}
		if ok && len(sorted) > 1 {
			// circular wrap gap: (min + p) − max ≥ 2
			gap.Add(sorted[0], p)
			gap.Sub(gap, sorted[len(sorted)-1])
			if gap.Cmp(two) < 0 {
				ok = false
			}
		}
		if ok {
			return p, zs, nil
		}
	}
	return nil, nil, fmt.Errorf("yao: no separating prime found after %d attempts (domain too dense for %d-bit primes)", maxPrimeAttempts, bits)
}

var two = big.NewInt(2)

// ---- Convenience predicates over non-negative values ----
//
// The DBSCAN protocols compare non-negative quantities a (held by Alice)
// and b (held by Bob), both bounded by a publicly known `bound`. The
// mappings below embed those predicates into Algorithm 1's strict i < j
// over [1, n0]. Each call still costs O(n0) = O(bound) work and bits.

// AliceLessEq decides a ≤ b for a ∈ [0, bound]; pairs with BobLessEq.
func AliceLessEq(conn transport.Conn, key *RSAKey, a, bound int64, random io.Reader, pool *paillier.Pool) (bool, error) {
	if a < 0 || a > bound {
		return false, fmt.Errorf("yao: value %d outside [0,%d]", a, bound)
	}
	// a ≤ b  ⟺  a+1 < b+2  over n0 = bound+2.
	return AliceCompare(conn, key, a+1, bound+2, random, pool)
}

// BobLessEq is the Bob half of AliceLessEq; b ∈ [0, bound].
func BobLessEq(conn transport.Conn, pub *RSAPublicKey, b, bound int64, random io.Reader) (bool, error) {
	if b < 0 || b > bound {
		return false, fmt.Errorf("yao: value %d outside [0,%d]", b, bound)
	}
	return BobCompare(conn, pub, b+2, bound+2, random)
}

// AliceLess decides a < b strictly; pairs with BobLess.
func AliceLess(conn transport.Conn, key *RSAKey, a, bound int64, random io.Reader, pool *paillier.Pool) (bool, error) {
	if a < 0 || a > bound {
		return false, fmt.Errorf("yao: value %d outside [0,%d]", a, bound)
	}
	// a < b ⟺ a+1 < b+1 over n0 = bound+1.
	return AliceCompare(conn, key, a+1, bound+1, random, pool)
}

// BobLess is the Bob half of AliceLess.
func BobLess(conn transport.Conn, pub *RSAPublicKey, b, bound int64, random io.Reader) (bool, error) {
	if b < 0 || b > bound {
		return false, fmt.Errorf("yao: value %d outside [0,%d]", b, bound)
	}
	return BobCompare(conn, pub, b+1, bound+1, random)
}

// SendPublicKey transmits Alice's RSA public key to Bob at session setup.
func SendPublicKey(conn transport.Conn, pub *RSAPublicKey) error {
	nb, eb := MarshalRSAPublicKey(pub)
	return transport.SendMsg(conn, transport.NewBuilder().PutBytes(nb).PutBytes(eb))
}

// RecvPublicKey receives the RSA public key sent by SendPublicKey.
func RecvPublicKey(conn transport.Conn) (*RSAPublicKey, error) {
	r, err := transport.RecvMsg(conn)
	if err != nil {
		return nil, err
	}
	nb := r.Bytes()
	eb := r.Bytes()
	if r.Err() != nil {
		return nil, r.Err()
	}
	return UnmarshalRSAPublicKey(nb, eb)
}
