package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func grid(n, m int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, m)
		for j := range row {
			row[j] = float64(i*100 + j)
		}
		pts[i] = row
	}
	return pts
}

func TestHorizontalSplitAndReconstruct(t *testing.T) {
	pts := grid(7, 3)
	owners := []Owner{Alice, Bob, Alice, Alice, Bob, Bob, Alice}
	s, err := Horizontal(pts, owners)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Alice) != 4 || len(s.Bob) != 3 {
		t.Fatalf("sizes %d/%d", len(s.Alice), len(s.Bob))
	}
	got, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		for j := range pts[i] {
			if got[i][j] != pts[i][j] {
				t.Fatalf("cell (%d,%d): %v != %v", i, j, got[i][j], pts[i][j])
			}
		}
	}
}

func TestHorizontalOwnerLengthMismatch(t *testing.T) {
	if _, err := Horizontal(grid(3, 2), []Owner{Alice}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestHorizontalRandomNonEmptySides(t *testing.T) {
	pts := grid(10, 2)
	for _, frac := range []float64{0, 0.5, 1} {
		s, err := HorizontalRandom(pts, frac, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Alice) == 0 || len(s.Bob) == 0 {
			t.Errorf("frac=%v: a side is empty (%d/%d)", frac, len(s.Alice), len(s.Bob))
		}
	}
	if _, err := HorizontalRandom(pts, 1.5, 1); err == nil {
		t.Error("frac > 1 accepted")
	}
}

func TestHorizontalSplitIsCopy(t *testing.T) {
	pts := grid(2, 2)
	s, err := Horizontal(pts, []Owner{Alice, Bob})
	if err != nil {
		t.Fatal(err)
	}
	pts[0][0] = -999
	if s.Alice[0][0] == -999 {
		t.Error("split aliases the source data")
	}
}

func TestVerticalSplitAndReconstruct(t *testing.T) {
	pts := grid(5, 4)
	s, err := Vertical(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.L != 2 || s.M != 4 {
		t.Fatalf("L=%d M=%d", s.L, s.M)
	}
	for i := range pts {
		if len(s.Alice[i]) != 2 || len(s.Bob[i]) != 2 {
			t.Fatal("wrong attribute counts")
		}
	}
	got, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		for j := range pts[i] {
			if got[i][j] != pts[i][j] {
				t.Fatalf("cell (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestVerticalValidation(t *testing.T) {
	pts := grid(3, 3)
	if _, err := Vertical(pts, 0); err == nil {
		t.Error("l=0 accepted")
	}
	if _, err := Vertical(pts, 3); err == nil {
		t.Error("l=m accepted")
	}
	ragged := [][]float64{{1, 2, 3}, {1, 2}}
	if _, err := Vertical(ragged, 1); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestArbitrarySplitAndReconstruct(t *testing.T) {
	pts := grid(4, 3)
	owners := [][]Owner{
		{Alice, Bob, Alice},
		{Bob, Bob, Bob},
		{Alice, Alice, Alice},
		{Bob, Alice, Bob},
	}
	s, err := Arbitrary(pts, owners)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.CellCounts()
	if a != 6 || b != 6 {
		t.Errorf("cell counts %d/%d, want 6/6", a, b)
	}
	got, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		for j := range pts[i] {
			if got[i][j] != pts[i][j] {
				t.Fatalf("cell (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestArbitraryValidation(t *testing.T) {
	pts := grid(2, 2)
	if _, err := Arbitrary(pts, [][]Owner{{Alice, Bob}}); err == nil {
		t.Error("row count mismatch accepted")
	}
	if _, err := Arbitrary(pts, [][]Owner{{Alice}, {Bob, Bob}}); err == nil {
		t.Error("ragged owners accepted")
	}
	if _, err := ArbitraryRandom(pts, -0.1, 1); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestOwnerString(t *testing.T) {
	if Alice.String() != "alice" || Bob.String() != "bob" {
		t.Error("Owner.String wrong")
	}
}

// Property (experiment E2): for any random split of any kind, Reconstruct
// returns the virtual database exactly — the split is a true partition.
func TestPartitionRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := 2 + rng.Intn(6)
		pts := make([][]float64, n)
		for i := range pts {
			row := make([]float64, m)
			for j := range row {
				row[j] = rng.NormFloat64() * 100
			}
			pts[i] = row
		}
		h, err := HorizontalRandom(pts, rng.Float64(), seed+1)
		if err != nil {
			return false
		}
		hr, err := h.Reconstruct()
		if err != nil || !equal(hr, pts) {
			return false
		}
		v, err := Vertical(pts, 1+rng.Intn(m-1))
		if err != nil {
			return false
		}
		vr, err := v.Reconstruct()
		if err != nil || !equal(vr, pts) {
			return false
		}
		a, err := ArbitraryRandom(pts, rng.Float64(), seed+2)
		if err != nil {
			return false
		}
		ar, err := a.Reconstruct()
		if err != nil || !equal(ar, pts) {
			return false
		}
		ca, cb := a.CellCounts()
		return ca+cb == n*m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func equal(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
