// Package partition models the three data-distribution settings of §3.2
// (Figures 2–4): horizontally partitioned data (each party owns a subset
// of complete records), vertically partitioned data (each party owns all
// records but a subset of attributes), and arbitrarily partitioned data
// (a per-cell mixture of the two). Experiment E2 checks that each split is
// a true partition of the virtual database — every cell owned exactly once
// — and that reconstruction is lossless.
package partition

import (
	"fmt"
	"math/rand"
)

// Owner identifies which party holds a record, attribute, or cell.
type Owner uint8

// The two parties of the paper's protocols.
const (
	Alice Owner = iota
	Bob
)

func (o Owner) String() string {
	if o == Alice {
		return "alice"
	}
	return "bob"
}

// HorizontalSplit assigns complete records to parties (Figure 2).
type HorizontalSplit struct {
	// AliceIdx and BobIdx hold the global record indices owned by each
	// party, in increasing order.
	AliceIdx, BobIdx []int
	// Alice and Bob hold the record values, aligned with the index slices.
	Alice, Bob [][]float64
}

// Horizontal splits records by a fixed ownership vector: owners[i] names
// the party holding record i.
func Horizontal(points [][]float64, owners []Owner) (HorizontalSplit, error) {
	if len(points) != len(owners) {
		return HorizontalSplit{}, fmt.Errorf("partition: %d points but %d owners", len(points), len(owners))
	}
	var s HorizontalSplit
	for i, p := range points {
		cp := append([]float64{}, p...)
		if owners[i] == Alice {
			s.AliceIdx = append(s.AliceIdx, i)
			s.Alice = append(s.Alice, cp)
		} else {
			s.BobIdx = append(s.BobIdx, i)
			s.Bob = append(s.Bob, cp)
		}
	}
	return s, nil
}

// HorizontalRandom assigns each record to Alice with probability
// fracAlice, deterministically in seed, guaranteeing both parties hold at
// least one record when n ≥ 2.
func HorizontalRandom(points [][]float64, fracAlice float64, seed int64) (HorizontalSplit, error) {
	if fracAlice < 0 || fracAlice > 1 {
		return HorizontalSplit{}, fmt.Errorf("partition: fracAlice %v outside [0,1]", fracAlice)
	}
	rng := rand.New(rand.NewSource(seed))
	owners := make([]Owner, len(points))
	for i := range owners {
		if rng.Float64() < fracAlice {
			owners[i] = Alice
		} else {
			owners[i] = Bob
		}
	}
	if len(points) >= 2 {
		// Ensure neither side is empty; two-party protocols are trivial
		// otherwise.
		hasA, hasB := false, false
		for _, o := range owners {
			if o == Alice {
				hasA = true
			} else {
				hasB = true
			}
		}
		if !hasA {
			owners[0] = Alice
		}
		if !hasB {
			owners[len(owners)-1] = Bob
		}
	}
	return Horizontal(points, owners)
}

// Reconstruct rebuilds the virtual database from a horizontal split.
func (s HorizontalSplit) Reconstruct() ([][]float64, error) {
	n := len(s.AliceIdx) + len(s.BobIdx)
	out := make([][]float64, n)
	for k, i := range s.AliceIdx {
		if i < 0 || i >= n || out[i] != nil {
			return nil, fmt.Errorf("partition: bad or duplicate record index %d", i)
		}
		out[i] = s.Alice[k]
	}
	for k, i := range s.BobIdx {
		if i < 0 || i >= n || out[i] != nil {
			return nil, fmt.Errorf("partition: bad or duplicate record index %d", i)
		}
		out[i] = s.Bob[k]
	}
	return out, nil
}

// VerticalSplit assigns attributes to parties (Figure 3): Alice holds
// attributes [0, L) and Bob [L, m) for every record, following the paper's
// layout where Alice owns the first l columns.
type VerticalSplit struct {
	L     int // number of leading attributes owned by Alice
	M     int // total attributes
	Alice [][]float64
	Bob   [][]float64
}

// Vertical splits every record after column l.
func Vertical(points [][]float64, l int) (VerticalSplit, error) {
	if len(points) == 0 {
		return VerticalSplit{L: l}, nil
	}
	m := len(points[0])
	if l < 1 || l >= m {
		return VerticalSplit{}, fmt.Errorf("partition: vertical split l=%d must be in [1,%d)", l, m)
	}
	s := VerticalSplit{L: l, M: m}
	for i, p := range points {
		if len(p) != m {
			return VerticalSplit{}, fmt.Errorf("partition: record %d has %d attributes, want %d", i, len(p), m)
		}
		s.Alice = append(s.Alice, append([]float64{}, p[:l]...))
		s.Bob = append(s.Bob, append([]float64{}, p[l:]...))
	}
	return s, nil
}

// Reconstruct rebuilds the virtual database from a vertical split.
func (s VerticalSplit) Reconstruct() ([][]float64, error) {
	if len(s.Alice) != len(s.Bob) {
		return nil, fmt.Errorf("partition: party record counts differ: %d vs %d", len(s.Alice), len(s.Bob))
	}
	out := make([][]float64, len(s.Alice))
	for i := range s.Alice {
		out[i] = append(append([]float64{}, s.Alice[i]...), s.Bob[i]...)
	}
	return out, nil
}

// ArbitrarySplit assigns each cell to a party (Figure 4).
type ArbitrarySplit struct {
	Owners [][]Owner // n × m ownership matrix
	// Alice and Bob hold full-size matrices; a party's matrix is only
	// meaningful at the cells it owns.
	Alice, Bob [][]float64
}

// Arbitrary splits cells by an explicit ownership matrix.
func Arbitrary(points [][]float64, owners [][]Owner) (ArbitrarySplit, error) {
	if len(points) != len(owners) {
		return ArbitrarySplit{}, fmt.Errorf("partition: %d points but %d owner rows", len(points), len(owners))
	}
	s := ArbitrarySplit{Owners: owners}
	for i, p := range points {
		if len(owners[i]) != len(p) {
			return ArbitrarySplit{}, fmt.Errorf("partition: row %d has %d owners for %d attributes", i, len(owners[i]), len(p))
		}
		ra := make([]float64, len(p))
		rb := make([]float64, len(p))
		for j, v := range p {
			if owners[i][j] == Alice {
				ra[j] = v
			} else {
				rb[j] = v
			}
		}
		s.Alice = append(s.Alice, ra)
		s.Bob = append(s.Bob, rb)
	}
	return s, nil
}

// ArbitraryRandom assigns each cell to Alice with probability pAlice,
// deterministically in seed.
func ArbitraryRandom(points [][]float64, pAlice float64, seed int64) (ArbitrarySplit, error) {
	if pAlice < 0 || pAlice > 1 {
		return ArbitrarySplit{}, fmt.Errorf("partition: pAlice %v outside [0,1]", pAlice)
	}
	rng := rand.New(rand.NewSource(seed))
	owners := make([][]Owner, len(points))
	for i, p := range points {
		row := make([]Owner, len(p))
		for j := range p {
			if rng.Float64() < pAlice {
				row[j] = Alice
			} else {
				row[j] = Bob
			}
		}
		owners[i] = row
	}
	return Arbitrary(points, owners)
}

// Reconstruct rebuilds the virtual database from an arbitrary split.
func (s ArbitrarySplit) Reconstruct() ([][]float64, error) {
	if len(s.Alice) != len(s.Owners) || len(s.Bob) != len(s.Owners) {
		return nil, fmt.Errorf("partition: inconsistent arbitrary split sizes")
	}
	out := make([][]float64, len(s.Owners))
	for i, row := range s.Owners {
		r := make([]float64, len(row))
		for j, o := range row {
			if o == Alice {
				r[j] = s.Alice[i][j]
			} else {
				r[j] = s.Bob[i][j]
			}
		}
		out[i] = r
	}
	return out, nil
}

// CellCounts returns how many cells each party owns — the paper's Figure 4
// decomposition check (vertical part + horizontal part = whole database).
func (s ArbitrarySplit) CellCounts() (alice, bob int) {
	for _, row := range s.Owners {
		for _, o := range row {
			if o == Alice {
				alice++
			} else {
				bob++
			}
		}
	}
	return alice, bob
}
