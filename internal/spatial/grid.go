// Package spatial provides the Eps-grid candidate index behind
// Config.Pruning: points bucketed into axis-aligned cells of side
// CellWidth(Eps²), padded per-cell occupancy directories that parties may
// exchange, and the neighbor-cell enumeration that turns a region query
// into a candidate set of at most 3^d cells.
//
// The geometric contract every consumer relies on: with cell width
// W = CellWidth(epsSq), two points with dist² ≤ epsSq always land in
// Adjacent cells (per-axis cell coordinates differing by at most 1), so
// pruning non-adjacent cells never drops a true neighbour. The converse
// does not hold — adjacent cells may contain points farther than Eps —
// which is exactly why pruning changes only how many secure comparisons
// run, never their outcomes.
//
// Everything here is plaintext bookkeeping over one party's own data; what
// crosses the wire (directories, candidate-cell announcements) is decided
// by the protocol layers, which account for each disclosure in the
// core.Ledger Index* classes.
package spatial

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/transport"
)

// CellWidth returns the smallest cell side W ≥ 1 with W² ≥ epsSq, i.e.
// the narrowest grid for which Eps-neighbours are always in adjacent
// cells. Negative epsSq (never produced by the codecs) is treated as 0.
func CellWidth(epsSq int64) int64 {
	if epsSq <= 1 {
		return 1
	}
	w := int64(math.Sqrt(float64(epsSq)))
	// Float sqrt can land one off in either direction near perfect squares;
	// settle exactly.
	for w > 1 && (w-1)*(w-1) >= epsSq {
		w--
	}
	for w*w < epsSq {
		w++
	}
	return w
}

// Bucket returns the cell coordinates of p on a grid of side w: per axis,
// floor(x/w). Works for negative coordinates (floor, not truncation).
func Bucket(p []int64, w int64) []int64 {
	c := make([]int64, len(p))
	for i, x := range p {
		c[i] = BucketCoord(x, w)
	}
	return c
}

// BucketCoord is the single-axis Bucket: floor(x/w).
func BucketCoord(x, w int64) int64 {
	if w < 1 {
		panic("spatial: cell width < 1")
	}
	q := x / w
	if x%w != 0 && x < 0 {
		q--
	}
	return q
}

// Adjacent reports whether two cells differ by at most 1 on every axis
// (a cell is adjacent to itself). Cells of different dimension are never
// adjacent. The check is overflow-safe for extreme cell coordinates.
func Adjacent(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		// a-b overflows only when the operands have opposite signs and are
		// astronomically far apart; any overflow case is non-adjacent.
		if (a[i] > 0) != (b[i] > 0) && (d > 0) != (a[i] > b[i]) {
			return false
		}
		if d < -1 || d > 1 {
			return false
		}
	}
	return true
}

// Key renders cell coordinates as a canonical map key.
func Key(c []int64) string {
	b := make([]byte, 0, len(c)*6)
	for _, v := range c {
		b = appendInt64(b, v)
		b = append(b, ';')
	}
	return string(b)
}

func appendInt64(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		if v == math.MinInt64 {
			// -v would overflow; spell the magnitude digit by digit.
			return append(b, []byte("9223372036854775808")...)
		}
		v = -v
	}
	if v >= 10 {
		b = appendInt64(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// Grid is one party's bucketing of its own points.
type Grid struct {
	W     int64
	Dim   int
	cells map[string][]int // point indices per occupied cell
	coord map[string][]int64
}

// NewGrid buckets points (all of dimension dim) into cells of side w.
func NewGrid(points [][]int64, w int64) (*Grid, error) {
	if w < 1 {
		return nil, fmt.Errorf("spatial: cell width %d < 1", w)
	}
	g := &Grid{W: w, cells: make(map[string][]int), coord: make(map[string][]int64)}
	for i, p := range points {
		if i == 0 {
			g.Dim = len(p)
		} else if len(p) != g.Dim {
			return nil, fmt.Errorf("spatial: point %d has %d coordinates, want %d", i, len(p), g.Dim)
		}
		c := Bucket(p, w)
		k := Key(c)
		if _, ok := g.cells[k]; !ok {
			g.coord[k] = c
		}
		g.cells[k] = append(g.cells[k], i)
	}
	return g, nil
}

// PointsIn returns the indices bucketed into the cell with the given
// coordinates (nil when the cell is empty).
func (g *Grid) PointsIn(c []int64) []int { return g.cells[Key(c)] }

// Cells returns the occupied cell coordinates in canonical (key-sorted)
// order — the order every directory and candidate enumeration uses, so
// both parties walk cells identically.
func (g *Grid) Cells() [][]int64 {
	keys := make([]string, 0, len(g.cells))
	for k := range g.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]int64, len(keys))
	for i, k := range keys {
		out[i] = g.coord[k]
	}
	return out
}

// PadCount rounds a cell occupancy up to the next multiple of quantum, so
// a disclosed count reveals occupancy only to quantum precision.
func PadCount(n, quantum int) int {
	if quantum < 1 {
		quantum = 1
	}
	if n <= 0 {
		return 0
	}
	return (n + quantum - 1) / quantum * quantum
}

// DirCell is one disclosed cell: coordinates plus padded occupancy.
type DirCell struct {
	Coord []int64
	Count int // padded occupancy, a positive multiple of the quantum
}

// Directory is the padded per-cell occupancy summary a party disclosed:
// which grid cells it occupies and, per cell, its point count rounded up
// to the padding quantum. Cells are in canonical key order.
type Directory struct {
	Dim   int
	Cells []DirCell

	byKey map[string]int // padded count per cell key, for O(1) lookups
}

// Directory summarizes the grid with counts padded to quantum.
func (g *Grid) Directory(quantum int) Directory {
	cells := g.Cells()
	d := Directory{Dim: g.Dim, Cells: make([]DirCell, len(cells)), byKey: make(map[string]int, len(cells))}
	for i, c := range cells {
		count := PadCount(len(g.cells[Key(c)]), quantum)
		d.Cells[i] = DirCell{Coord: c, Count: count}
		d.byKey[Key(c)] = count
	}
	return d
}

// PaddedTotal sums the padded counts over all cells.
func (d Directory) PaddedTotal() int {
	t := 0
	for _, c := range d.Cells {
		t += c.Count
	}
	return t
}

// Candidates returns the directory cells adjacent to the query cell, in
// the directory's canonical order, plus their padded occupancy total —
// the exact size of the candidate set a pruned region query runs against.
// Cost is O(3^d) map probes per query, independent of the directory size.
func (d Directory) Candidates(cell []int64) (cells [][]int64, total int) {
	if len(cell) != d.Dim {
		return nil, 0
	}
	// Odometer over the 3^d neighbor offsets, probing the byKey map.
	offs := make([]int64, len(cell))
	for i := range offs {
		offs[i] = -1
	}
	probe := make([]int64, len(cell))
	for {
		overflow := false
		for i := range cell {
			c := cell[i] + offs[i]
			// ±1 can only wrap at the int64 extremes; such cells cannot
			// exist for in-domain data.
			if (offs[i] > 0 && c < cell[i]) || (offs[i] < 0 && c > cell[i]) {
				overflow = true
				break
			}
			probe[i] = c
		}
		if !overflow {
			if count := d.byKey[Key(probe)]; count > 0 {
				cells = append(cells, append([]int64{}, probe...))
				total += count
			}
		}
		i := 0
		for ; i < len(offs); i++ {
			offs[i]++
			if offs[i] <= 1 {
				break
			}
			offs[i] = -1
		}
		if i == len(offs) {
			break
		}
	}
	sort.Slice(cells, func(a, b int) bool { return Key(cells[a]) < Key(cells[b]) })
	return cells, total
}

// Count returns the padded occupancy of the given cell (0 when absent).
func (d Directory) Count(cell []int64) int {
	return d.byKey[Key(cell)]
}

// ResolveQuery validates an announced candidate-cell list against this
// party's own grid and directory — canonical order, occupied cells only —
// and resolves it to the member point indices (in cell order) plus the
// number of dummy entries that pad the batch to the disclosed counts.
// Every responder of a pruned region query uses this, so the driver's and
// responder's batch sizes agree by construction.
func (d Directory) ResolveQuery(g *Grid, cells [][]int64) (members []int, nDummy int, err error) {
	prev := ""
	total := 0
	for i, c := range cells {
		k := Key(c)
		if i > 0 && k <= prev {
			return nil, 0, fmt.Errorf("spatial: query cells out of canonical order")
		}
		prev = k
		padded := d.byKey[k]
		if padded == 0 {
			return nil, 0, fmt.Errorf("spatial: query names unoccupied cell %v", c)
		}
		members = append(members, g.cells[k]...)
		total += padded
	}
	return members, total - len(members), nil
}

// Encode appends the directory to a wire message: dim, cell count, then
// per cell the coordinates and padded count.
func (d Directory) Encode(b *transport.Builder) *transport.Builder {
	b.PutUint(uint64(d.Dim)).PutUint(uint64(len(d.Cells)))
	for _, c := range d.Cells {
		b.PutInts(c.Coord)
		b.PutUint(uint64(c.Count))
	}
	return b
}

// DecodeDirectory parses a directory and validates its shape: matching
// dimensions, canonical cell order (sorted, unique), and positive counts
// that are multiples of the agreed quantum.
func DecodeDirectory(r *transport.Reader, dim, quantum int) (Directory, error) {
	d := Directory{Dim: int(r.Uint()), byKey: make(map[string]int)}
	n := int(r.Uint())
	if err := r.Err(); err != nil {
		return Directory{}, err
	}
	if d.Dim != dim {
		return Directory{}, fmt.Errorf("spatial: directory dimension %d, want %d", d.Dim, dim)
	}
	// Each cell needs at least two bytes (coord count + padded count), so
	// a count beyond the buffer is a corrupt or hostile frame, not a short
	// loop or a giant allocation.
	if n < 0 || n > r.Remaining() {
		return Directory{}, fmt.Errorf("spatial: directory cell count %d exceeds message size", n)
	}
	prev := ""
	for i := 0; i < n; i++ {
		coord := r.Ints()
		count := int(r.Uint())
		if err := r.Err(); err != nil {
			return Directory{}, err
		}
		if len(coord) != dim {
			return Directory{}, fmt.Errorf("spatial: directory cell %d has %d coordinates, want %d", i, len(coord), dim)
		}
		if count < 1 || (quantum > 0 && count%quantum != 0) {
			return Directory{}, fmt.Errorf("spatial: directory cell %d count %d not a positive multiple of quantum %d", i, count, quantum)
		}
		k := Key(coord)
		if i > 0 && k <= prev {
			return Directory{}, fmt.Errorf("spatial: directory cells out of canonical order")
		}
		prev = k
		d.Cells = append(d.Cells, DirCell{Coord: coord, Count: count})
		d.byKey[k] = count
	}
	return d, nil
}

// EncodeCells appends a plain cell-coordinate list (candidate-cell
// announcements, lockstep cell rows) to a wire message.
func EncodeCells(b *transport.Builder, cells [][]int64) *transport.Builder {
	b.PutUint(uint64(len(cells)))
	for _, c := range cells {
		b.PutInts(c)
	}
	return b
}

// DecodeCells parses a cell-coordinate list of the given dimension; a
// negative dim accepts any width (callers validate consistency).
func DecodeCells(r *transport.Reader, dim int) ([][]int64, error) {
	n := int(r.Uint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Each cell needs at least one byte; reject counts a corrupt frame
	// cannot back before allocating for them.
	if n < 0 || n > r.Remaining() {
		return nil, fmt.Errorf("spatial: cell count %d exceeds message size", n)
	}
	out := make([][]int64, 0, n)
	for i := 0; i < n; i++ {
		c := r.Ints()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if dim >= 0 && len(c) != dim {
			return nil, fmt.Errorf("spatial: cell %d has %d coordinates, want %d", i, len(c), dim)
		}
		out = append(out, c)
	}
	return out, nil
}
