package spatial

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/transport"
)

// Incremental (streaming) support for the candidate index. A long-lived
// session that absorbs appended points must not rebuild and re-exchange
// its whole directory per batch: instead each append becomes one
// *generation* — an immutable grid + padded directory over just that
// batch — and what crosses the wire is a GridDelta naming only the cells
// the batch touched. The effective index is the generation stack: a
// cell's disclosed occupancy is the sum of its per-generation padded
// counts, and a region query that already holds cached answers for
// generations [0, from) runs its cryptographic phases against
// generations [from, …) only.
//
// Padding is per generation by construction: a batch of b points
// discloses pad(b_c) per touched cell c, exactly what a fresh directory
// over that batch alone would disclose — so the delta leaks occupancy at
// the same quantum granularity as the initial exchange, never finer.
// The cost is that the stacked padded total can exceed the single-grid
// padded total (each generation rounds up separately); the equivalence
// harness therefore treats padded sizes as index-class state, while
// labels and decision-level budgets stay byte-identical.
//
// Sliding windows age generations out the other end: Expire tombstones
// the oldest k generations and compacts them away. Generation numbering
// stays absolute — generation g keeps its number for the stack's whole
// life — but expired generations answer like empty ones (a husk
// directory, a zero-width index range), and the global point indices of
// the surviving points are rebased to 0 so the live window is always a
// contiguous [0, Total()) range. Expiry discloses only which
// generations died (their padded sizes were already public from the
// original delta), never which points they held.
//
// Point-level retraction deletes individual records from the middle of
// live generations: Retract masks the named slots, the surviving global
// indices compact immediately (so [0, Total()) always spans exactly the
// surviving points), and the generation's *disclosed* directory is left
// untouched — a masked slot simply answers as one more dummy in pruned
// queries, so per-query wire sizes never change and the only disclosure
// is the PointTombstone itself. Once a generation's occupancy falls
// below compactOccupancy, its grid is compacted in place (masked slots
// dropped, survivors renumbered) while the directory keeps disclosing
// the original padded counts.

// ErrGenRange reports a generation index outside the stack's absolute
// range. A malformed peer watermark surfaces as this error on the
// serving goroutine, never as a panic.
var ErrGenRange = errors.New("spatial: generation index out of range")

// Stack is one party's generational view of its own data: an append-only
// sequence of (grid, directory) pairs over batches of points, with global
// point indices assigned contiguously in append order. Expire removes the
// oldest generations; the survivors' indices are rebased so [0, Total())
// always spans exactly the live window.
type Stack struct {
	W       int64
	Dim     int
	Quantum int

	dead int // expired prefix generations, compacted away
	gens []stackGen
}

type stackGen struct {
	start int // global index of the generation's first point
	n     int // slots (original batch size, until compaction)
	live  int // unmasked slots still serving
	// masked marks retracted slots; nil when every slot is live. rank is
	// the live renumbering per slot (number of live slots before it),
	// maintained whenever masked is non-nil.
	masked []bool
	rank   []int
	grid   *Grid
	dir    Directory
}

// liveSlots returns the slot indices of the generation's live points in
// live order.
func (g *stackGen) liveSlots() []int {
	out := make([]int, 0, g.live)
	for j := 0; j < g.n; j++ {
		if g.masked == nil || !g.masked[j] {
			out = append(out, j)
		}
	}
	return out
}

// rerank rebuilds the live renumbering after masking changed.
func (g *stackGen) rerank() {
	g.rank = make([]int, g.n)
	r := 0
	for j := 0; j < g.n; j++ {
		g.rank[j] = r
		if !g.masked[j] {
			r++
		}
	}
}

// compactOccupancy is the occupancy threshold below which a retraction
// compacts the generation in place: once fewer than half the slots are
// live, the grid drops its masked slots and renumbers the survivors
// contiguously. The disclosed directory is never rebuilt — its padded
// counts stay exactly what the append-time delta disclosed.
const compactOccupancy = 0.5

// compact drops the masked slots from the generation's grid and
// renumbers the survivors; the directory is deliberately untouched.
func (g *stackGen) compact() {
	for k, js := range g.grid.cells {
		kept := make([]int, 0, len(js))
		for _, j := range js {
			if !g.masked[j] {
				kept = append(kept, g.rank[j])
			}
		}
		if len(kept) == 0 {
			delete(g.grid.cells, k)
			delete(g.grid.coord, k)
		} else {
			g.grid.cells[k] = kept
		}
	}
	g.n = g.live
	g.masked = nil
	g.rank = nil
}

// NewStack builds an empty generation stack for points of the given
// dimension on a grid of side w with the given padding quantum.
func NewStack(w int64, dim, quantum int) (*Stack, error) {
	if w < 1 {
		return nil, fmt.Errorf("spatial: cell width %d < 1", w)
	}
	if dim < 1 {
		return nil, fmt.Errorf("spatial: dimension %d < 1", dim)
	}
	if quantum < 1 {
		quantum = 1
	}
	return &Stack{W: w, Dim: dim, Quantum: quantum}, nil
}

// Gens reports the number of generations appended so far, including
// expired ones — generation numbering is absolute for the stack's life.
func (s *Stack) Gens() int { return s.dead + len(s.gens) }

// Dead reports how many prefix generations have been expired.
func (s *Stack) Dead() int { return s.dead }

// Total reports the live point count: expired generations' points are
// compacted away and the survivors rebased, so indices [0, Total())
// always name exactly the window's points.
func (s *Stack) Total() int {
	if len(s.gens) == 0 {
		return 0
	}
	last := s.gens[len(s.gens)-1]
	return last.start + last.live
}

// Dir returns generation g's padded directory — the exact payload the
// owning party disclosed for that generation. An expired generation
// returns an empty husk (it no longer occupies any cell); an index
// outside [0, Gens()) returns ErrGenRange.
func (s *Stack) Dir(g int) (Directory, error) {
	if g < 0 || g >= s.Gens() {
		return Directory{}, fmt.Errorf("%w: directory %d of %d", ErrGenRange, g, s.Gens())
	}
	if g < s.dead {
		return Directory{Dim: s.Dim, byKey: map[string]int{}}, nil
	}
	return s.gens[g-s.dead].dir, nil
}

// GenStart returns the global index of generation g's first live point;
// GenStart(Gens()) is Total(), so [GenStart(g), GenStart(g+1)) always
// spans generation g. Expired generations are empty ranges at index 0.
// An index outside [0, Gens()] returns ErrGenRange.
func (s *Stack) GenStart(g int) (int, error) {
	if g < 0 || g > s.Gens() {
		return 0, fmt.Errorf("%w: start of generation %d of %d", ErrGenRange, g, s.Gens())
	}
	if g <= s.dead {
		return 0, nil
	}
	if g == s.Gens() {
		return s.Total(), nil
	}
	return s.gens[g-s.dead].start, nil
}

// Append buckets one batch of points (possibly empty) as the next
// generation and returns its padded directory — the delta the owning
// party sends to its peers. Point indices continue from the previous
// generation's end.
func (s *Stack) Append(points [][]int64) (Directory, error) {
	for i, p := range points {
		if len(p) != s.Dim {
			return Directory{}, fmt.Errorf("spatial: append point %d has %d coordinates, want %d", i, len(p), s.Dim)
		}
	}
	g, err := NewGrid(points, s.W)
	if err != nil {
		return Directory{}, err
	}
	d := g.Directory(s.Quantum)
	// An empty batch yields a dimensionless grid; pin the directory to the
	// stack's dimension so the wire codec stays self-consistent.
	d.Dim = s.Dim
	if d.byKey == nil {
		d.byKey = map[string]int{}
	}
	s.gens = append(s.gens, stackGen{start: s.Total(), n: len(points), live: len(points), grid: g, dir: d})
	return d, nil
}

// Expire tombstones the oldest k live generations and compacts them
// away: their points vanish, the surviving points are rebased to start
// at 0, and the dead generations thereafter answer as empty (husk
// directories, zero-width ranges). Returns how many points were
// removed. Expiring all live generations leaves a valid empty window.
func (s *Stack) Expire(k int) (removed int, err error) {
	if k < 0 || k > len(s.gens) {
		return 0, fmt.Errorf("%w: expire %d of %d live generations", ErrGenRange, k, len(s.gens))
	}
	for g := 0; g < k; g++ {
		removed += s.gens[g].live
	}
	live := make([]stackGen, len(s.gens)-k)
	copy(live, s.gens[k:])
	for i := range live {
		live[i].start -= removed
	}
	s.gens = live
	s.dead += k
	return removed, nil
}

// ValidateRetractIDs checks a retraction id list against a live point
// count: strictly ascending indices inside [0, total). Every retraction
// consumer — Stack.Retract, the wire decoder, and the protocol layers
// without a stack of their own (pruning off, lockstep families) — shares
// this rule, so over-retraction surfaces as the same typed error
// everywhere.
func ValidateRetractIDs(ids []int, total int) error {
	if len(ids) > total {
		return fmt.Errorf("%w: retract %d of %d live points", ErrGenRange, len(ids), total)
	}
	for i, id := range ids {
		if id < 0 || id >= total {
			return fmt.Errorf("%w: retract index %d outside live range [0,%d)", ErrGenRange, id, total)
		}
		if i > 0 && id <= ids[i-1] {
			return fmt.Errorf("spatial: retract indices not strictly ascending at %d", id)
		}
	}
	return nil
}

// Retract masks the given live point indices (strictly ascending, in the
// current [0, Total()) numbering) out of their generations. The
// surviving indices compact immediately — after Retract, [0, Total())
// spans exactly the surviving points — while each generation's disclosed
// directory is untouched: a masked slot keeps its padded footprint and
// answers as a dummy, so retraction changes no per-query wire sizes.
// A generation whose occupancy drops below compactOccupancy is compacted
// in place. Retracting every point of a generation leaves a valid
// zero-occupancy generation that serves all-dummy answers.
func (s *Stack) Retract(ids []int) error {
	if err := ValidateRetractIDs(ids, s.Total()); err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	// Partition ids by generation against the pre-retraction numbering,
	// then mask via each generation's pre-retraction live slot order.
	next := 0
	for gi := range s.gens {
		gen := &s.gens[gi]
		end := gen.start + gen.live
		if next >= len(ids) || ids[next] >= end {
			continue
		}
		slots := gen.liveSlots()
		if gen.masked == nil {
			gen.masked = make([]bool, gen.n)
		}
		for next < len(ids) && ids[next] < end {
			gen.masked[slots[ids[next]-gen.start]] = true
			gen.live--
			next++
		}
		gen.rerank()
		if float64(gen.live) < compactOccupancy*float64(gen.n) {
			gen.compact()
		}
	}
	// Rebase the surviving global indices to a contiguous [0, Total()).
	start := 0
	for gi := range s.gens {
		s.gens[gi].start = start
		start += s.gens[gi].live
	}
	return nil
}

// GenOccupancy reports generation g's live and slot counts — the
// occupancy retraction tracks. Expired generations report 0/0; an index
// outside [0, Gens()) returns ErrGenRange. After a compaction the two
// counts re-converge (masked slots are physically dropped).
func (s *Stack) GenOccupancy(g int) (live, slots int, err error) {
	if g < 0 || g >= s.Gens() {
		return 0, 0, fmt.Errorf("%w: occupancy of generation %d of %d", ErrGenRange, g, s.Gens())
	}
	if g < s.dead {
		return 0, 0, nil
	}
	gen := s.gens[g-s.dead]
	return gen.live, gen.n, nil
}

// GenOf maps a live global index to its generation's absolute number —
// how a retraction id names the generation whose caches it invalidates.
func (s *Stack) GenOf(id int) (int, error) {
	if id < 0 || id >= s.Total() {
		return 0, fmt.Errorf("%w: point %d outside live range [0,%d)", ErrGenRange, id, s.Total())
	}
	for gi := range s.gens {
		if id < s.gens[gi].start+s.gens[gi].live {
			return s.dead + gi, nil
		}
	}
	return 0, fmt.Errorf("%w: point %d outside live range [0,%d)", ErrGenRange, id, s.Total())
}

// ResolveRange is ResolveSpan over the open suffix [from, Gens()).
func (s *Stack) ResolveRange(from int, cells [][]int64) (members []int, nDummy int, err error) {
	return s.ResolveSpan(from, s.Gens(), cells)
}

// ResolveSpan is the responder half of a generation-scoped pruned query:
// it validates an announced candidate-cell list against the generations
// [from, to) and resolves it to the member point indices (global,
// generation-major) plus the number of dummy entries padding the batch to
// the disclosed stacked counts. A cell must be occupied in at least one
// live generation of the span, mirroring Directory.ResolveQuery's
// occupancy check on the full index; expired generations contribute
// nothing. from and to are absolute, with 0 ≤ from ≤ to ≤ Gens().
func (s *Stack) ResolveSpan(from, to int, cells [][]int64) (members []int, nDummy int, err error) {
	if from < 0 || to > s.Gens() || from > to {
		return nil, 0, fmt.Errorf("spatial: resolve span %d..%d of %d generations", from, to, s.Gens())
	}
	first, last := from-s.dead, to-s.dead
	if first < 0 {
		first = 0
	}
	if last < 0 {
		last = 0
	}
	prev := ""
	padded := 0
	for i, c := range cells {
		k := Key(c)
		if len(c) != s.Dim {
			return nil, 0, fmt.Errorf("spatial: query cell %d has %d coordinates, want %d", i, len(c), s.Dim)
		}
		if i > 0 && k <= prev {
			return nil, 0, fmt.Errorf("spatial: query cells out of canonical order")
		}
		prev = k
		occupied := false
		for g := first; g < last; g++ {
			gen := s.gens[g]
			if p := gen.dir.Count(c); p > 0 {
				occupied = true
				padded += p
				for _, j := range gen.grid.PointsIn(c) {
					if gen.masked != nil {
						if gen.masked[j] {
							continue // retracted: answers as one more dummy
						}
						j = gen.rank[j]
					}
					members = append(members, gen.start+j)
				}
			}
		}
		if !occupied {
			return nil, 0, fmt.Errorf("spatial: query names cell %v unoccupied in generations %d..%d", c, from, to)
		}
	}
	return members, padded - len(members), nil
}

// CandidatesRange is CandidatesSpan over the open suffix [from, len(dirs)).
func CandidatesRange(dirs []Directory, from int, cell []int64) (cells [][]int64, total int) {
	return CandidatesSpan(dirs, from, len(dirs), cell)
}

// CandidatesSpan is the driver half over a peer's generation
// directories: the union of the per-generation candidate cells adjacent
// to the query cell across dirs[from:to], in canonical order, plus their
// stacked padded total — the exact number of MP/comparison instances a
// generation-scoped pruned query will run. Expired generations are kept
// in dirs as empty husks, so they contribute no candidates.
func CandidatesSpan(dirs []Directory, from, to int, cell []int64) (cells [][]int64, total int) {
	seen := make(map[string][]int64)
	for g := from; g < to; g++ {
		cs, t := dirs[g].Candidates(cell)
		total += t
		for _, c := range cs {
			seen[Key(c)] = c
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cells = make([][]int64, len(keys))
	for i, k := range keys {
		cells[i] = seen[k]
	}
	return cells, total
}

// GridDelta is the wire form of one index append: the 1-based generation
// number it creates plus the padded directory of just the appended batch.
// The generation number pins ordering — a delta applied out of sequence
// is a protocol error, not a silent index divergence.
type GridDelta struct {
	Gen int
	Dir Directory
}

// Encode appends the delta to a wire message.
func (d GridDelta) Encode(b *transport.Builder) *transport.Builder {
	b.PutUint(uint64(d.Gen))
	return d.Dir.Encode(b)
}

// DecodeGridDelta parses and validates a delta: the generation number
// must be exactly wantGen (the receiver's next expected generation), and
// the embedded directory must satisfy every invariant of the initial
// index exchange (dimension, canonical cell order, positive
// quantum-multiple counts). An empty directory is valid — a party may
// append no points of its own while its peer appends.
func DecodeGridDelta(r *transport.Reader, dim, quantum, wantGen int) (GridDelta, error) {
	gen := int(r.Uint())
	if err := r.Err(); err != nil {
		return GridDelta{}, err
	}
	if gen != wantGen {
		return GridDelta{}, fmt.Errorf("spatial: delta for generation %d, want %d", gen, wantGen)
	}
	d, err := DecodeDirectory(r, dim, quantum)
	if err != nil {
		return GridDelta{}, fmt.Errorf("spatial: delta directory: %w", err)
	}
	return GridDelta{Gen: gen, Dir: d}, nil
}

// TombstoneDelta is the wire form of one window expiry: the 0-based
// absolute index of the first expired generation (which must equal the
// receiver's current dead count — expiry is strictly prefix-order) plus
// how many generations die. Only generation identities cross the wire;
// their contents were disclosed once, at append time, and the tombstone
// adds nothing at finer granularity.
type TombstoneDelta struct {
	From int
	N    int
}

// Encode appends the tombstone to a wire message.
func (d TombstoneDelta) Encode(b *transport.Builder) *transport.Builder {
	return b.PutUint(uint64(d.From)).PutUint(uint64(d.N))
}

// DecodeTombstoneDelta parses and validates a tombstone: From must be
// exactly wantFrom (the receiver's current dead-generation count, so
// expiries apply in prefix order), and N must name between 1 and
// liveGens generations — a peer cannot expire generations it never
// appended, nor more than the live window holds.
func DecodeTombstoneDelta(r *transport.Reader, wantFrom, liveGens int) (TombstoneDelta, error) {
	from := int(r.Uint())
	n := int(r.Uint())
	if err := r.Err(); err != nil {
		return TombstoneDelta{}, err
	}
	if from != wantFrom {
		return TombstoneDelta{}, fmt.Errorf("spatial: tombstone from generation %d, want %d", from, wantFrom)
	}
	if n < 1 || n > liveGens {
		return TombstoneDelta{}, fmt.Errorf("spatial: tombstone for %d of %d live generations", n, liveGens)
	}
	return TombstoneDelta{From: from, N: n}, nil
}

// PointTombstone is the wire form of one point-level retraction: the
// strictly ascending live global indices (in the sender's current
// [0, Total()) numbering) of the records being deleted. Only identities
// cross the wire — coordinates were never disclosed and stay that way;
// the receiver derives each id's generation from the public per-
// generation counts and masks its caches accordingly. An empty tombstone
// is valid (a party participating in a symmetric retraction exchange
// with nothing of its own to delete).
type PointTombstone struct {
	IDs []int
}

// Encode appends the tombstone to a wire message.
func (d PointTombstone) Encode(b *transport.Builder) *transport.Builder {
	b.PutUint(uint64(len(d.IDs)))
	for _, id := range d.IDs {
		b.PutUint(uint64(id))
	}
	return b
}

// DecodePointTombstone parses and validates a point tombstone against
// the sender's live point count as the receiver tracks it: at most total
// ids, strictly ascending, inside [0, total). A hostile or stale frame
// surfaces as an error on the serving goroutine, never as a panic or a
// silent index divergence.
func DecodePointTombstone(r *transport.Reader, total int) (PointTombstone, error) {
	n := int(r.Uint())
	if err := r.Err(); err != nil {
		return PointTombstone{}, err
	}
	// Each id needs at least one byte, so a count beyond the buffer is a
	// corrupt frame, not a giant allocation.
	if n < 0 || n > r.Remaining() {
		return PointTombstone{}, fmt.Errorf("spatial: tombstone id count %d exceeds message size", n)
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = int(r.Uint())
	}
	if err := r.Err(); err != nil {
		return PointTombstone{}, err
	}
	if err := ValidateRetractIDs(ids, total); err != nil {
		return PointTombstone{}, err
	}
	return PointTombstone{IDs: ids}, nil
}
