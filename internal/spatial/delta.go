package spatial

import (
	"fmt"
	"sort"

	"repro/internal/transport"
)

// Incremental (streaming) support for the candidate index. A long-lived
// session that absorbs appended points must not rebuild and re-exchange
// its whole directory per batch: instead each append becomes one
// *generation* — an immutable grid + padded directory over just that
// batch — and what crosses the wire is a GridDelta naming only the cells
// the batch touched. The effective index is the generation stack: a
// cell's disclosed occupancy is the sum of its per-generation padded
// counts, and a region query that already holds cached answers for
// generations [0, from) runs its cryptographic phases against
// generations [from, …) only.
//
// Padding is per generation by construction: a batch of b points
// discloses pad(b_c) per touched cell c, exactly what a fresh directory
// over that batch alone would disclose — so the delta leaks occupancy at
// the same quantum granularity as the initial exchange, never finer.
// The cost is that the stacked padded total can exceed the single-grid
// padded total (each generation rounds up separately); the equivalence
// harness therefore treats padded sizes as index-class state, while
// labels and decision-level budgets stay byte-identical.

// Stack is one party's generational view of its own data: an append-only
// sequence of (grid, directory) pairs over batches of points, with global
// point indices assigned contiguously in append order.
type Stack struct {
	W       int64
	Dim     int
	Quantum int

	gens []stackGen
}

type stackGen struct {
	start int // global index of the generation's first point
	n     int
	grid  *Grid
	dir   Directory
}

// NewStack builds an empty generation stack for points of the given
// dimension on a grid of side w with the given padding quantum.
func NewStack(w int64, dim, quantum int) (*Stack, error) {
	if w < 1 {
		return nil, fmt.Errorf("spatial: cell width %d < 1", w)
	}
	if dim < 1 {
		return nil, fmt.Errorf("spatial: dimension %d < 1", dim)
	}
	if quantum < 1 {
		quantum = 1
	}
	return &Stack{W: w, Dim: dim, Quantum: quantum}, nil
}

// Gens reports the number of generations appended so far.
func (s *Stack) Gens() int { return len(s.gens) }

// Total reports the total point count across all generations.
func (s *Stack) Total() int {
	if len(s.gens) == 0 {
		return 0
	}
	last := s.gens[len(s.gens)-1]
	return last.start + last.n
}

// Dir returns generation g's padded directory — the exact payload the
// owning party disclosed for that generation.
func (s *Stack) Dir(g int) Directory { return s.gens[g].dir }

// GenStart returns the global index of generation g's first point;
// GenStart(Gens()) is Total(), so [GenStart(g), GenStart(g+1)) always
// spans generation g.
func (s *Stack) GenStart(g int) int {
	if g >= len(s.gens) {
		return s.Total()
	}
	return s.gens[g].start
}

// Append buckets one batch of points (possibly empty) as the next
// generation and returns its padded directory — the delta the owning
// party sends to its peers. Point indices continue from the previous
// generation's end.
func (s *Stack) Append(points [][]int64) (Directory, error) {
	for i, p := range points {
		if len(p) != s.Dim {
			return Directory{}, fmt.Errorf("spatial: append point %d has %d coordinates, want %d", i, len(p), s.Dim)
		}
	}
	g, err := NewGrid(points, s.W)
	if err != nil {
		return Directory{}, err
	}
	d := g.Directory(s.Quantum)
	// An empty batch yields a dimensionless grid; pin the directory to the
	// stack's dimension so the wire codec stays self-consistent.
	d.Dim = s.Dim
	if d.byKey == nil {
		d.byKey = map[string]int{}
	}
	s.gens = append(s.gens, stackGen{start: s.Total(), n: len(points), grid: g, dir: d})
	return d, nil
}

// ResolveRange is the responder half of a generation-scoped pruned query:
// it validates an announced candidate-cell list against the generations
// [from, Gens()) and resolves it to the member point indices (global,
// generation-major) plus the number of dummy entries padding the batch to
// the disclosed stacked counts. A cell must be occupied in at least one
// generation of the range, mirroring Directory.ResolveQuery's occupancy
// check on the full index.
func (s *Stack) ResolveRange(from int, cells [][]int64) (members []int, nDummy int, err error) {
	if from < 0 || from > len(s.gens) {
		return nil, 0, fmt.Errorf("spatial: resolve range from generation %d of %d", from, len(s.gens))
	}
	prev := ""
	padded := 0
	for i, c := range cells {
		k := Key(c)
		if len(c) != s.Dim {
			return nil, 0, fmt.Errorf("spatial: query cell %d has %d coordinates, want %d", i, len(c), s.Dim)
		}
		if i > 0 && k <= prev {
			return nil, 0, fmt.Errorf("spatial: query cells out of canonical order")
		}
		prev = k
		occupied := false
		for g := from; g < len(s.gens); g++ {
			gen := s.gens[g]
			if p := gen.dir.Count(c); p > 0 {
				occupied = true
				padded += p
				for _, j := range gen.grid.PointsIn(c) {
					members = append(members, gen.start+j)
				}
			}
		}
		if !occupied {
			return nil, 0, fmt.Errorf("spatial: query names cell %v unoccupied in generations %d..%d", c, from, len(s.gens))
		}
	}
	return members, padded - len(members), nil
}

// CandidatesRange is the driver half over a peer's generation
// directories: the union of the per-generation candidate cells adjacent
// to the query cell across dirs[from:], in canonical order, plus their
// stacked padded total — the exact number of MP/comparison instances a
// generation-scoped pruned query will run.
func CandidatesRange(dirs []Directory, from int, cell []int64) (cells [][]int64, total int) {
	seen := make(map[string][]int64)
	for g := from; g < len(dirs); g++ {
		cs, t := dirs[g].Candidates(cell)
		total += t
		for _, c := range cs {
			seen[Key(c)] = c
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cells = make([][]int64, len(keys))
	for i, k := range keys {
		cells[i] = seen[k]
	}
	return cells, total
}

// GridDelta is the wire form of one index append: the 1-based generation
// number it creates plus the padded directory of just the appended batch.
// The generation number pins ordering — a delta applied out of sequence
// is a protocol error, not a silent index divergence.
type GridDelta struct {
	Gen int
	Dir Directory
}

// Encode appends the delta to a wire message.
func (d GridDelta) Encode(b *transport.Builder) *transport.Builder {
	b.PutUint(uint64(d.Gen))
	return d.Dir.Encode(b)
}

// DecodeGridDelta parses and validates a delta: the generation number
// must be exactly wantGen (the receiver's next expected generation), and
// the embedded directory must satisfy every invariant of the initial
// index exchange (dimension, canonical cell order, positive
// quantum-multiple counts). An empty directory is valid — a party may
// append no points of its own while its peer appends.
func DecodeGridDelta(r *transport.Reader, dim, quantum, wantGen int) (GridDelta, error) {
	gen := int(r.Uint())
	if err := r.Err(); err != nil {
		return GridDelta{}, err
	}
	if gen != wantGen {
		return GridDelta{}, fmt.Errorf("spatial: delta for generation %d, want %d", gen, wantGen)
	}
	d, err := DecodeDirectory(r, dim, quantum)
	if err != nil {
		return GridDelta{}, fmt.Errorf("spatial: delta directory: %w", err)
	}
	return GridDelta{Gen: gen, Dir: d}, nil
}
