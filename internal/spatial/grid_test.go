package spatial

import (
	"math"
	"testing"

	"repro/internal/transport"
)

func TestCellWidth(t *testing.T) {
	cases := []struct {
		epsSq, want int64
	}{
		{0, 1}, {1, 1}, {2, 2}, {4, 2}, {5, 3}, {9, 3}, {10, 4},
		{int64(1) << 50, 1 << 25},
		{(int64(1) << 50) + 1, (1 << 25) + 1},
	}
	for _, c := range cases {
		got := CellWidth(c.epsSq)
		if got != c.want {
			t.Errorf("CellWidth(%d) = %d, want %d", c.epsSq, got, c.want)
		}
		if got*got < c.epsSq || (got > 1 && (got-1)*(got-1) >= c.epsSq) {
			t.Errorf("CellWidth(%d) = %d is not the minimal width", c.epsSq, got)
		}
	}
}

func TestBucketFloorsNegatives(t *testing.T) {
	got := Bucket([]int64{-1, -4, -5, 0, 4, 5}, 4)
	want := []int64{-1, -1, -2, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bucket[-1 -4 -5 0 4 5]/4 = %v, want %v", got, want)
		}
	}
}

// Neighbours within Eps must always land in adjacent cells — the pruning
// soundness invariant.
func TestNeighboursAlwaysAdjacent(t *testing.T) {
	epsSq := int64(25)
	w := CellWidth(epsSq)
	pts := [][]int64{{0, 0}, {5, 0}, {3, 4}, {4, 4}, {63, 63}, {58, 60}}
	for i, p := range pts {
		for j, q := range pts {
			var d2 int64
			for k := range p {
				d := p[k] - q[k]
				d2 += d * d
			}
			if d2 <= epsSq && !Adjacent(Bucket(p, w), Bucket(q, w)) {
				t.Errorf("points %d,%d within Eps but in non-adjacent cells", i, j)
			}
		}
	}
}

func TestAdjacentExtremes(t *testing.T) {
	if Adjacent([]int64{math.MinInt64}, []int64{math.MaxInt64}) {
		t.Error("opposite extremes reported adjacent (subtraction overflow)")
	}
	if !Adjacent([]int64{math.MaxInt64}, []int64{math.MaxInt64 - 1}) {
		t.Error("consecutive extreme cells should be adjacent")
	}
	if Adjacent([]int64{0}, []int64{0, 0}) {
		t.Error("different dimensions should never be adjacent")
	}
}

func TestDirectoryPaddingAndCandidates(t *testing.T) {
	pts := [][]int64{
		{0, 0}, {1, 1}, {2, 2}, // cell (0,0) ×3
		{9, 9},             // cell (2,2)
		{60, 60}, {61, 60}, // cell (15,15)
	}
	g, err := NewGrid(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Directory(4)
	if len(d.Cells) != 3 {
		t.Fatalf("directory has %d cells, want 3", len(d.Cells))
	}
	for _, c := range d.Cells {
		if c.Count != 4 {
			t.Errorf("cell %v padded count %d, want 4", c.Coord, c.Count)
		}
	}
	if got := d.PaddedTotal(); got != 12 {
		t.Errorf("padded total %d, want 12", got)
	}
	// A query in cell (1,1) is adjacent to (0,0) and (2,2) but not (15,15).
	cells, total := d.Candidates([]int64{1, 1})
	if len(cells) != 2 || total != 8 {
		t.Errorf("candidates = %v (total %d), want 2 cells totalling 8", cells, total)
	}
	// A query far from everything has no candidates.
	cells, total = d.Candidates([]int64{8, 8})
	if len(cells) != 0 || total != 0 {
		t.Errorf("distant query got candidates %v (total %d)", cells, total)
	}
}

func TestDirectoryCodecRoundTrip(t *testing.T) {
	pts := [][]int64{{0, 0}, {7, 7}, {63, 0}}
	g, err := NewGrid(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Directory(2)
	b := transport.NewBuilder()
	d.Encode(b)
	got, err := DecodeDirectory(transport.NewReader(b.Bytes()), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(d.Cells) || got.Dim != d.Dim {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, d)
	}
	for i := range d.Cells {
		if Key(got.Cells[i].Coord) != Key(d.Cells[i].Coord) || got.Cells[i].Count != d.Cells[i].Count {
			t.Fatalf("cell %d mismatch: %+v vs %+v", i, got.Cells[i], d.Cells[i])
		}
	}
}

func TestDecodeDirectoryRejectsMalformed(t *testing.T) {
	mk := func(f func(*transport.Builder)) *transport.Reader {
		b := transport.NewBuilder()
		f(b)
		return transport.NewReader(b.Bytes())
	}
	cases := map[string]*transport.Reader{
		"wrong dim": mk(func(b *transport.Builder) {
			b.PutUint(3).PutUint(0)
		}),
		"non-quantum count": mk(func(b *transport.Builder) {
			b.PutUint(2).PutUint(1).PutInts([]int64{0, 0}).PutUint(3)
		}),
		"zero count": mk(func(b *transport.Builder) {
			b.PutUint(2).PutUint(1).PutInts([]int64{0, 0}).PutUint(0)
		}),
		"unsorted cells": mk(func(b *transport.Builder) {
			b.PutUint(2).PutUint(2).
				PutInts([]int64{1, 0}).PutUint(2).
				PutInts([]int64{0, 0}).PutUint(2)
		}),
		"short coord": mk(func(b *transport.Builder) {
			b.PutUint(2).PutUint(1).PutInts([]int64{0}).PutUint(2)
		}),
		"truncated": transport.NewReader([]byte{2}),
		"huge count": mk(func(b *transport.Builder) {
			b.PutUint(2).PutUint(1 << 61)
		}),
		"wrapping count": mk(func(b *transport.Builder) {
			b.PutUint(2).PutUint(1 << 63)
		}),
	}
	for name, r := range cases {
		if _, err := DecodeDirectory(r, 2, 2); err == nil {
			t.Errorf("%s: decode accepted malformed directory", name)
		}
	}
}

func TestDecodeCellsRejectsHugeCounts(t *testing.T) {
	for _, count := range []uint64{1 << 61, 1 << 63} {
		b := transport.NewBuilder().PutUint(count)
		if _, err := DecodeCells(transport.NewReader(b.Bytes()), 2); err == nil {
			t.Errorf("cell count %d accepted", count)
		}
	}
}

func TestCellsCodecRoundTrip(t *testing.T) {
	cells := [][]int64{{-3, 7}, {0, 0}, {1 << 40, -(1 << 40)}}
	b := EncodeCells(transport.NewBuilder(), cells)
	got, err := DecodeCells(transport.NewReader(b.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("decoded %d cells, want %d", len(got), len(cells))
	}
	for i := range cells {
		if Key(got[i]) != Key(cells[i]) {
			t.Fatalf("cell %d: %v vs %v", i, got[i], cells[i])
		}
	}
	if _, err := DecodeCells(transport.NewReader(b.Bytes()), 3); err == nil {
		t.Error("dimension mismatch not rejected")
	}
}

func TestGridRejectsRaggedPoints(t *testing.T) {
	if _, err := NewGrid([][]int64{{1, 2}, {1}}, 2); err == nil {
		t.Error("ragged points accepted")
	}
}

func TestPadCount(t *testing.T) {
	cases := []struct{ n, q, want int }{
		{0, 4, 0}, {1, 4, 4}, {4, 4, 4}, {5, 4, 8}, {7, 1, 7}, {3, 0, 3},
	}
	for _, c := range cases {
		if got := PadCount(c.n, c.q); got != c.want {
			t.Errorf("PadCount(%d,%d) = %d, want %d", c.n, c.q, got, c.want)
		}
	}
}
