package spatial

import (
	"math"
	"testing"

	"repro/internal/transport"
)

// FuzzGridBucket drives the bucketing and adjacency primitives with
// arbitrary coordinates — huge magnitudes, both signs, fixed-point
// extremes — and checks the invariants every pruning consumer relies on:
//
//  1. Bucket never panics and always places a point inside its own cell
//     ([c·w, (c+1)·w) per axis).
//  2. Adjacency is symmetric and reflexive.
//  3. Two points whose per-axis gap is at most w land in adjacent cells
//     (the soundness half of the pruning contract).
func FuzzGridBucket(f *testing.F) {
	f.Add(int64(0), int64(0), int64(1), int64(1), uint8(2))
	f.Add(int64(-1), int64(63), int64(math.MaxInt64), int64(math.MinInt64), uint8(25))
	f.Add(int64(math.MaxInt64-1), int64(math.MaxInt64), int64(1)<<50, -(int64(1) << 50), uint8(1))
	f.Add(int64(5), int64(-5), int64(4), int64(-4), uint8(3))

	f.Fuzz(func(t *testing.T, x0, y0, x1, y1 int64, wRaw uint8) {
		w := int64(wRaw)%64 + 1
		p := []int64{x0, y0}
		q := []int64{x1, y1}
		cp := Bucket(p, w)
		cq := Bucket(q, w)

		// A point is inside its own cell on every axis: c·w ≤ x < (c+1)·w.
		// Compare via the residue to stay overflow-safe at the extremes.
		for i, x := range p {
			r := x - cp[i]*w
			if r < 0 || r >= w {
				t.Fatalf("Bucket(%d, w=%d) = cell %d with residue %d outside [0,%d)", x, w, cp[i], r, w)
			}
		}

		// Adjacency is reflexive and symmetric.
		if !Adjacent(cp, cp) {
			t.Fatalf("cell %v not adjacent to itself", cp)
		}
		if Adjacent(cp, cq) != Adjacent(cq, cp) {
			t.Fatalf("asymmetric adjacency between %v and %v", cp, cq)
		}

		// Soundness: per-axis gap ≤ w ⇒ adjacent cells. Skip axes whose
		// difference overflows int64 — they are farther than any width.
		close := true
		for i := range p {
			d := p[i] - q[i]
			if (p[i] >= 0) != (q[i] >= 0) && (d < 0) != (p[i] < q[i]) {
				close = false // true distance exceeds int64: definitely > w
				break
			}
			if d < 0 {
				d = -d
			}
			if d > w {
				close = false
				break
			}
		}
		if close && !Adjacent(cp, cq) {
			t.Fatalf("points %v and %v within per-axis gap %d but cells %v,%v not adjacent", p, q, w, cp, cq)
		}

		// Key is injective on the pair (equal keys ⟺ equal cells).
		if (Key(cp) == Key(cq)) != (cp[0] == cq[0] && cp[1] == cq[1]) {
			t.Fatalf("Key collision or mismatch for %v vs %v", cp, cq)
		}
	})
}

// FuzzGridDelta drives the delta wire codec two ways. Structured inputs
// exercise the honest path: a batch bucketed by Stack.Append must encode
// to a delta that decodes back to the same cells and padded counts, and
// the decoded directory must satisfy every invariant DecodeDirectory
// enforces. The raw bytes (reinterpreted as a hostile frame) exercise the
// defensive path: DecodeGridDelta must reject or parse — never panic,
// never accept a directory violating canonical order or the quantum.
func FuzzGridDelta(f *testing.F) {
	f.Add(int64(0), int64(0), int64(7), int64(7), uint8(2), uint8(1), []byte{})
	f.Add(int64(-9), int64(40), int64(40), int64(-9), uint8(5), uint8(4), []byte{1, 0, 0})
	f.Add(int64(math.MaxInt64), int64(math.MinInt64), int64(1), int64(2), uint8(63), uint8(8), []byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, x0, y0, x1, y1 int64, wRaw, qRaw uint8, raw []byte) {
		w := int64(wRaw)%64 + 1
		quantum := int(qRaw)%8 + 1

		// Honest path: append → encode → decode round trip.
		s, err := NewStack(w, 2, quantum)
		if err != nil {
			t.Fatal(err)
		}
		batch := [][]int64{{x0, y0}, {x1, y1}}
		d, err := s.Append(batch)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		b := GridDelta{Gen: 1, Dir: d}.Encode(transport.NewBuilder())
		got, err := DecodeGridDelta(transport.NewReader(b.Bytes()), 2, quantum, 1)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(got.Dir.Cells) != len(d.Cells) || got.Dir.PaddedTotal() != d.PaddedTotal() {
			t.Fatalf("round trip mismatch: %+v vs %+v", got.Dir, d)
		}
		// The batch members must resolve against the stacked index with
		// exactly the padded counts the delta disclosed.
		members, dummy, err := s.ResolveRange(0, dirCoords(d))
		if err != nil {
			t.Fatalf("resolve over own delta cells: %v", err)
		}
		if len(members)+dummy != d.PaddedTotal() {
			t.Fatalf("resolve %d members + %d dummies ≠ padded total %d", len(members), dummy, d.PaddedTotal())
		}

		// Hostile path: arbitrary bytes must never panic the decoder, and
		// anything it accepts must satisfy the directory invariants.
		hd, err := DecodeGridDelta(transport.NewReader(raw), 2, quantum, 1)
		if err == nil {
			prev := ""
			for i, c := range hd.Dir.Cells {
				if len(c.Coord) != 2 || c.Count < 1 || c.Count%quantum != 0 {
					t.Fatalf("decoder accepted invalid cell %+v", c)
				}
				if k := Key(c.Coord); i > 0 && k <= prev {
					t.Fatalf("decoder accepted out-of-order cells")
				} else {
					prev = k
				}
			}
		}
	})
}

// FuzzTombstoneDelta drives the tombstone wire codec two ways, mirroring
// FuzzGridDelta. The honest path round-trips a structured expiry against
// a live stack and checks Expire agrees with what the codec accepted; the
// hostile path feeds raw bytes to DecodeTombstoneDelta, which must reject
// or parse — never panic, never accept an expiry outside the receiver's
// prefix-order window.
func FuzzTombstoneDelta(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(3), []byte{})
	f.Add(uint8(2), uint8(2), uint8(4), []byte{0, 0})
	f.Add(uint8(5), uint8(1), uint8(1), []byte{0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, deadRaw, nRaw, liveRaw uint8, raw []byte) {
		dead := int(deadRaw) % 8
		live := int(liveRaw)%8 + 1
		n := int(nRaw)%live + 1

		// Honest path: a stack with the claimed shape accepts the
		// tombstone and Expire applies it.
		s, err := NewStack(4, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < dead+live; g++ {
			if _, err := s.Append([][]int64{{int64(g), int64(g)}}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Expire(dead); err != nil {
			t.Fatalf("expire prefix: %v", err)
		}
		b := TombstoneDelta{From: dead, N: n}.Encode(transport.NewBuilder())
		got, err := DecodeTombstoneDelta(transport.NewReader(b.Bytes()), dead, live)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if got.From != dead || got.N != n {
			t.Fatalf("round trip mismatch: %+v", got)
		}
		removed, err := s.Expire(got.N)
		if err != nil {
			t.Fatalf("expire decoded tombstone: %v", err)
		}
		if removed != n || s.Dead() != dead+n || s.Total() != live-n {
			t.Fatalf("expire removed %d (dead %d, total %d), want %d/%d/%d",
				removed, s.Dead(), s.Total(), n, dead+n, live-n)
		}

		// Hostile path: arbitrary bytes must never panic the decoder, and
		// anything it accepts must be a valid prefix-order expiry.
		hd, err := DecodeTombstoneDelta(transport.NewReader(raw), dead, live)
		if err == nil {
			if hd.From != dead || hd.N < 1 || hd.N > live {
				t.Fatalf("decoder accepted invalid tombstone %+v (dead %d, live %d)", hd, dead, live)
			}
		}
	})
}

// dirCoords lists a directory's cell coordinates in canonical order.
func dirCoords(d Directory) [][]int64 {
	out := make([][]int64, len(d.Cells))
	for i, c := range d.Cells {
		out[i] = c.Coord
	}
	return out
}
