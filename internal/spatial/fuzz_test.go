package spatial

import (
	"math"
	"testing"
)

// FuzzGridBucket drives the bucketing and adjacency primitives with
// arbitrary coordinates — huge magnitudes, both signs, fixed-point
// extremes — and checks the invariants every pruning consumer relies on:
//
//  1. Bucket never panics and always places a point inside its own cell
//     ([c·w, (c+1)·w) per axis).
//  2. Adjacency is symmetric and reflexive.
//  3. Two points whose per-axis gap is at most w land in adjacent cells
//     (the soundness half of the pruning contract).
func FuzzGridBucket(f *testing.F) {
	f.Add(int64(0), int64(0), int64(1), int64(1), uint8(2))
	f.Add(int64(-1), int64(63), int64(math.MaxInt64), int64(math.MinInt64), uint8(25))
	f.Add(int64(math.MaxInt64-1), int64(math.MaxInt64), int64(1)<<50, -(int64(1) << 50), uint8(1))
	f.Add(int64(5), int64(-5), int64(4), int64(-4), uint8(3))

	f.Fuzz(func(t *testing.T, x0, y0, x1, y1 int64, wRaw uint8) {
		w := int64(wRaw)%64 + 1
		p := []int64{x0, y0}
		q := []int64{x1, y1}
		cp := Bucket(p, w)
		cq := Bucket(q, w)

		// A point is inside its own cell on every axis: c·w ≤ x < (c+1)·w.
		// Compare via the residue to stay overflow-safe at the extremes.
		for i, x := range p {
			r := x - cp[i]*w
			if r < 0 || r >= w {
				t.Fatalf("Bucket(%d, w=%d) = cell %d with residue %d outside [0,%d)", x, w, cp[i], r, w)
			}
		}

		// Adjacency is reflexive and symmetric.
		if !Adjacent(cp, cp) {
			t.Fatalf("cell %v not adjacent to itself", cp)
		}
		if Adjacent(cp, cq) != Adjacent(cq, cp) {
			t.Fatalf("asymmetric adjacency between %v and %v", cp, cq)
		}

		// Soundness: per-axis gap ≤ w ⇒ adjacent cells. Skip axes whose
		// difference overflows int64 — they are farther than any width.
		close := true
		for i := range p {
			d := p[i] - q[i]
			if (p[i] >= 0) != (q[i] >= 0) && (d < 0) != (p[i] < q[i]) {
				close = false // true distance exceeds int64: definitely > w
				break
			}
			if d < 0 {
				d = -d
			}
			if d > w {
				close = false
				break
			}
		}
		if close && !Adjacent(cp, cq) {
			t.Fatalf("points %v and %v within per-axis gap %d but cells %v,%v not adjacent", p, q, w, cp, cq)
		}

		// Key is injective on the pair (equal keys ⟺ equal cells).
		if (Key(cp) == Key(cq)) != (cp[0] == cq[0] && cp[1] == cq[1]) {
			t.Fatalf("Key collision or mismatch for %v vs %v", cp, cq)
		}
	})
}
