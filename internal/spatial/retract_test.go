package spatial

import (
	"errors"
	"testing"

	"repro/internal/transport"
)

// Stack.Retract unit coverage: masking keeps the disclosed padded
// footprint while the live numbering compacts, occupancy tracking feeds
// the compaction threshold, and the zero-occupancy and rebasing edges
// stay serviceable.

func TestStackRetractMasksWithoutShrinkingFootprint(t *testing.T) {
	s := mkStack(t, 4, 2, 2)
	// One 4-point generation in cell (0,0) plus one far point.
	if _, err := s.Append([][]int64{{0, 0}, {1, 1}, {2, 2}, {9, 9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([][]int64{{0, 1}, {1, 0}}); err != nil {
		t.Fatal(err)
	}
	before, err := s.Dir(0)
	if err != nil {
		t.Fatal(err)
	}
	// Retract one gen-0 member: occupancy 3/4 stays above the threshold,
	// so the slot is masked, not compacted.
	if err := s.Retract([]int{1}); err != nil {
		t.Fatal(err)
	}
	if s.Total() != 5 {
		t.Fatalf("total after retract = %d, want 5", s.Total())
	}
	live, slots, err := s.GenOccupancy(0)
	if err != nil || live != 3 || slots != 4 {
		t.Fatalf("gen 0 occupancy = %d/%d, %v, want 3/4 (masked slot kept)", live, slots, err)
	}
	after, err := s.Dir(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Cells) != len(before.Cells) || after.PaddedTotal() != before.PaddedTotal() {
		t.Fatalf("retraction changed the disclosed directory: %+v vs %+v", after, before)
	}
	// The masked slot answers as one more dummy; the member count drops.
	members, dummy, err := s.ResolveRange(0, [][]int64{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Cell (0,0) spans {0,0},{1,1},{2,2} in gen 0 (one masked) and both
	// gen-1 points: 4 live members, and the masked slot pads as a dummy.
	if len(members) != 4 || dummy < 1 {
		t.Fatalf("post-retract resolve = %d members / %d dummies, want 4 live + ≥1 dummy", len(members), dummy)
	}
	// The live numbering compacts: survivors span [0, Total()).
	for _, m := range members {
		if m < 0 || m >= s.Total() {
			t.Fatalf("member %d outside compacted live range [0,%d)", m, s.Total())
		}
	}
}

func TestStackRetractCompactsBelowThreshold(t *testing.T) {
	s := mkStack(t, 4, 2, 1)
	if _, err := s.Append([][]int64{{0, 0}, {1, 1}, {2, 2}, {2, 1}}); err != nil {
		t.Fatal(err)
	}
	// Retract 3 of 4: occupancy 1/4 < 1/2 compacts the generation in
	// place — masked slots are physically dropped.
	if err := s.Retract([]int{0, 2, 3}); err != nil {
		t.Fatal(err)
	}
	live, slots, err := s.GenOccupancy(0)
	if err != nil || live != 1 || slots != 1 {
		t.Fatalf("gen 0 occupancy = %d/%d, %v, want 1/1 after compaction", live, slots, err)
	}
	if s.Total() != 1 {
		t.Fatalf("total = %d, want 1", s.Total())
	}
	// The survivor keeps serving queries under its rebased index, and a
	// post-compaction retraction addresses the rebased numbering. All
	// four appended points bucket into cell (0,0) on the width-4 grid.
	members, _, err := s.ResolveRange(0, [][]int64{{0, 0}})
	if err != nil || len(members) != 1 || members[0] != 0 {
		t.Fatalf("post-compaction resolve = %v, %v, want [0]", members, err)
	}
	if err := s.Retract([]int{0}); err != nil {
		t.Fatal(err)
	}
	if s.Total() != 0 {
		t.Fatalf("total after rebased retract = %d, want 0", s.Total())
	}
}

func TestStackRetractZeroOccupancyGeneration(t *testing.T) {
	s := mkStack(t, 4, 2, 2)
	if _, err := s.Append([][]int64{{0, 0}, {1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([][]int64{{5, 5}}); err != nil {
		t.Fatal(err)
	}
	// Retract every gen-1 point: the generation stays live with zero
	// occupancy and serves all-dummy answers.
	if err := s.Retract([]int{2}); err != nil {
		t.Fatal(err)
	}
	live, _, err := s.GenOccupancy(1)
	if err != nil || live != 0 {
		t.Fatalf("gen 1 occupancy = %d, %v, want 0", live, err)
	}
	// Point {5,5} buckets into cell (1,1) on the width-4 grid; the
	// disclosed directory still lists that cell, so the query stays
	// valid after the retraction compacted the generation empty.
	members, dummy, err := s.ResolveRange(1, [][]int64{{1, 1}})
	if err != nil || len(members) != 0 || dummy < 1 {
		t.Fatalf("zero-occupancy resolve = %d members / %d dummies, %v, want all dummies", len(members), dummy, err)
	}
	// The zero-occupancy generation still expires normally, and the
	// stack keeps accepting appends.
	if _, err := s.Expire(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([][]int64{{3, 3}}); err != nil {
		t.Fatal(err)
	}
	if s.Total() != 1 {
		t.Fatalf("total after refill = %d, want 1", s.Total())
	}
}

func TestStackGenOfAndRetractValidation(t *testing.T) {
	s := mkStack(t, 4, 2, 1)
	if _, err := s.Append([][]int64{{0, 0}, {1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([][]int64{{5, 5}}); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[int]int{0: 0, 1: 0, 2: 1} {
		if g, err := s.GenOf(id); err != nil || g != want {
			t.Errorf("GenOf(%d) = %d, %v, want %d", id, g, err, want)
		}
	}
	if _, err := s.GenOf(3); !errors.Is(err, ErrGenRange) {
		t.Errorf("GenOf(3) err = %v, want ErrGenRange", err)
	}
	if err := s.Retract([]int{0, 0}); err == nil {
		t.Error("duplicated retract ids accepted")
	}
	if err := s.Retract([]int{3}); !errors.Is(err, ErrGenRange) {
		t.Errorf("out-of-range retract err = %v, want ErrGenRange", err)
	}
	if err := s.Retract([]int{0, 1, 2, 3}); !errors.Is(err, ErrGenRange) {
		t.Errorf("over-retract err = %v, want ErrGenRange", err)
	}
	if _, _, err := s.GenOccupancy(7); !errors.Is(err, ErrGenRange) {
		t.Errorf("GenOccupancy(7) err = %v, want ErrGenRange", err)
	}
	// The rejected calls left the stack untouched.
	if s.Total() != 3 {
		t.Fatalf("total after rejected retractions = %d, want 3", s.Total())
	}
}

func TestPointTombstoneCodec(t *testing.T) {
	for _, ids := range [][]int{{}, {0}, {1, 3, 4}, {0, 1, 2, 3, 4}} {
		b := PointTombstone{IDs: ids}.Encode(transport.NewBuilder())
		got, err := DecodePointTombstone(transport.NewReader(b.Bytes()), 5)
		if err != nil {
			t.Fatalf("round trip of %v rejected: %v", ids, err)
		}
		if len(got.IDs) != len(ids) {
			t.Fatalf("round trip of %v = %v", ids, got.IDs)
		}
		for i := range ids {
			if got.IDs[i] != ids[i] {
				t.Fatalf("round trip of %v = %v", ids, got.IDs)
			}
		}
	}
	// A tombstone valid for the sender's count but not the receiver's
	// view is rejected by the count bound.
	b := PointTombstone{IDs: []int{0, 1, 2}}.Encode(transport.NewBuilder())
	if _, err := DecodePointTombstone(transport.NewReader(b.Bytes()), 2); !errors.Is(err, ErrGenRange) {
		t.Errorf("oversized tombstone err = %v, want ErrGenRange", err)
	}
}

// FuzzPointTombstone drives the point-tombstone wire codec two ways,
// mirroring FuzzTombstoneDelta. The honest path round-trips a structured
// retraction against a live stack and checks Retract agrees with what
// the codec accepted; the hostile path feeds raw bytes to
// DecodePointTombstone, which must reject or parse — never panic, never
// accept ids outside the receiver's live window or out of order.
func FuzzPointTombstone(f *testing.F) {
	f.Add(uint8(3), uint8(1), []byte{})
	f.Add(uint8(5), uint8(0x15), []byte{0, 0})
	f.Add(uint8(8), uint8(0xff), []byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(uint8(1), uint8(0), []byte{2, 0, 1})

	f.Fuzz(func(t *testing.T, totalRaw, maskRaw uint8, raw []byte) {
		total := int(totalRaw)%8 + 1
		// maskRaw's low bits pick which live indices the honest tombstone
		// retracts (already ascending by construction).
		var ids []int
		for i := 0; i < total; i++ {
			if maskRaw&(1<<i) != 0 {
				ids = append(ids, i)
			}
		}

		// Honest path: a stack with the claimed shape accepts the
		// tombstone and Retract applies it.
		s, err := NewStack(4, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		batch := make([][]int64, total)
		for i := range batch {
			batch[i] = []int64{int64(i), int64(i)}
		}
		if _, err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		b := PointTombstone{IDs: ids}.Encode(transport.NewBuilder())
		got, err := DecodePointTombstone(transport.NewReader(b.Bytes()), total)
		if err != nil {
			t.Fatalf("round trip of %v rejected: %v", ids, err)
		}
		if len(got.IDs) != len(ids) {
			t.Fatalf("round trip of %v = %v", ids, got.IDs)
		}
		if err := s.Retract(got.IDs); err != nil {
			t.Fatalf("retract decoded tombstone %v: %v", got.IDs, err)
		}
		if s.Total() != total-len(ids) {
			t.Fatalf("retract left %d live points, want %d", s.Total(), total-len(ids))
		}

		// Hostile path: arbitrary bytes must never panic the decoder, and
		// anything it accepts must be a valid ascending in-range id list.
		hd, err := DecodePointTombstone(transport.NewReader(raw), total)
		if err == nil {
			if len(hd.IDs) > total {
				t.Fatalf("decoder accepted %d ids over live count %d", len(hd.IDs), total)
			}
			for i, id := range hd.IDs {
				if id < 0 || id >= total {
					t.Fatalf("decoder accepted out-of-range id %d (live %d)", id, total)
				}
				if i > 0 && id <= hd.IDs[i-1] {
					t.Fatalf("decoder accepted out-of-order ids %v", hd.IDs)
				}
			}
		}
	})
}
