package spatial

import (
	"errors"
	"testing"

	"repro/internal/transport"
)

func mkStack(t *testing.T, w int64, dim, quantum int) *Stack {
	t.Helper()
	s, err := NewStack(w, dim, quantum)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStackAppendAssignsGlobalIndices(t *testing.T) {
	s := mkStack(t, 4, 2, 2)
	if _, err := s.Append([][]int64{{0, 0}, {1, 1}, {9, 9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([][]int64{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if s.Gens() != 2 || s.Total() != 4 {
		t.Fatalf("gens=%d total=%d, want 2/4", s.Gens(), s.Total())
	}
	// Cell (0,0) holds points 0,1 from gen 0 and point 3 from gen 1.
	members, dummy, err := s.ResolveRange(0, [][]int64{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 1: true, 3: true}
	if len(members) != 3 {
		t.Fatalf("members %v, want 3 of %v", members, want)
	}
	for _, m := range members {
		if !want[m] {
			t.Fatalf("unexpected member %d in %v", m, members)
		}
	}
	// Quantum 2: gen 0 pads 2→2, gen 1 pads 1→2, so one dummy entry.
	if dummy != 1 {
		t.Fatalf("dummy=%d, want 1", dummy)
	}

	// Range [1, 2): only the generation-1 member, padded to the quantum.
	members, dummy, err = s.ResolveRange(1, [][]int64{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0] != 3 || dummy != 1 {
		t.Fatalf("suffix resolve = %v/%d, want [3]/1", members, dummy)
	}
}

func TestStackResolveRangeRejectsBadQueries(t *testing.T) {
	s := mkStack(t, 4, 2, 1)
	if _, err := s.Append([][]int64{{0, 0}, {9, 9}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ResolveRange(0, [][]int64{{5, 5}}); err == nil {
		t.Error("unoccupied cell accepted")
	}
	if _, _, err := s.ResolveRange(0, [][]int64{{2, 2}, {0, 0}}); err == nil {
		t.Error("out-of-order cells accepted")
	}
	if _, _, err := s.ResolveRange(3, nil); err == nil {
		t.Error("out-of-range generation accepted")
	}
	if _, _, err := s.ResolveRange(1, [][]int64{{0, 0}}); err == nil {
		t.Error("cell occupied only before the range accepted")
	}
	if _, err := s.Append([][]int64{{1, 1, 1}}); err == nil {
		t.Error("wrong-dimension append accepted")
	}
}

func TestCandidatesRangeUnionsGenerations(t *testing.T) {
	s := mkStack(t, 4, 2, 2)
	d0, _ := s.Append([][]int64{{0, 0}, {0, 1}}) // cell (0,0), padded 2
	d1, _ := s.Append([][]int64{{5, 5}})         // cell (1,1), padded 2
	d2, _ := s.Append([][]int64{{20, 20}})       // cell (5,5): not adjacent to (0,0)
	dirs := []Directory{d0, d1, d2}

	cells, total := CandidatesRange(dirs, 0, []int64{0, 0})
	if len(cells) != 2 || total != 4 {
		t.Fatalf("full range candidates=%v total=%d, want 2 cells / 4", cells, total)
	}
	cells, total = CandidatesRange(dirs, 1, []int64{0, 0})
	if len(cells) != 1 || total != 2 {
		t.Fatalf("suffix candidates=%v total=%d, want cell (1,1) / 2", cells, total)
	}
	cells, total = CandidatesRange(dirs, 2, []int64{0, 0})
	if len(cells) != 0 || total != 0 {
		t.Fatalf("disjoint suffix candidates=%v total=%d, want none", cells, total)
	}
}

func TestStackDirGenStartBounds(t *testing.T) {
	s := mkStack(t, 4, 2, 1)
	if _, err := s.Append([][]int64{{0, 0}}); err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{-1, 1, 7} {
		if _, err := s.Dir(g); !errors.Is(err, ErrGenRange) {
			t.Errorf("Dir(%d) err = %v, want ErrGenRange", g, err)
		}
	}
	for _, g := range []int{-1, 2, 7} {
		if _, err := s.GenStart(g); !errors.Is(err, ErrGenRange) {
			t.Errorf("GenStart(%d) err = %v, want ErrGenRange", g, err)
		}
	}
	// GenStart(Gens()) is Total(), not an error.
	if n, err := s.GenStart(1); err != nil || n != 1 {
		t.Fatalf("GenStart(Gens()) = %d, %v, want 1, nil", n, err)
	}
	// ResolveRange with from == Gens() accepts an empty query.
	if _, _, err := s.ResolveRange(s.Gens(), nil); err != nil {
		t.Fatalf("ResolveRange(Gens(), nil): %v", err)
	}
}

func TestStackExpireRebasesSurvivors(t *testing.T) {
	s := mkStack(t, 4, 2, 2)
	if _, err := s.Append([][]int64{{0, 0}, {1, 1}, {9, 9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([][]int64{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([][]int64{{1, 0}, {9, 8}}); err != nil {
		t.Fatal(err)
	}
	removed, err := s.Expire(1)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 || s.Dead() != 1 || s.Gens() != 3 || s.Total() != 3 {
		t.Fatalf("expire: removed=%d dead=%d gens=%d total=%d", removed, s.Dead(), s.Gens(), s.Total())
	}
	// The expired generation answers as empty.
	d, err := s.Dir(0)
	if err != nil || len(d.Cells) != 0 || d.Dim != 2 {
		t.Fatalf("dead Dir(0) = %+v, %v", d, err)
	}
	if n, err := s.GenStart(0); err != nil || n != 0 {
		t.Fatalf("dead GenStart(0) = %d, %v", n, err)
	}
	if n, err := s.GenStart(1); err != nil || n != 0 {
		t.Fatalf("survivor GenStart(1) = %d, %v, want rebased 0", n, err)
	}
	if n, err := s.GenStart(2); err != nil || n != 1 {
		t.Fatalf("survivor GenStart(2) = %d, %v, want rebased 1", n, err)
	}
	// Cell (0,0): gen-1 point (now index 0) + gen-2 point (now index 1);
	// the expired gen-0 members are gone. Quantum 2 pads each live
	// generation's single member to 2.
	members, dummy, err := s.ResolveRange(0, [][]int64{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 || dummy != 2 {
		t.Fatalf("post-expiry resolve = %v/%d, want 2 members / 2 dummies", members, dummy)
	}
	for _, m := range members {
		if m != 0 && m != 1 {
			t.Fatalf("post-expiry member %d outside rebased window", m)
		}
	}
	// A from inside the dead prefix behaves like from == dead.
	m2, d2, err := s.ResolveRange(1, [][]int64{{0, 0}})
	if err != nil || len(m2) != len(members) || d2 != dummy {
		t.Fatalf("from inside dead prefix: %v/%d, %v", m2, d2, err)
	}
	// Expiring more than the live window is rejected.
	if _, err := s.Expire(3); !errors.Is(err, ErrGenRange) {
		t.Fatalf("over-expire err = %v, want ErrGenRange", err)
	}
}

func TestStackExpireAllAndEmptyBatches(t *testing.T) {
	s := mkStack(t, 4, 2, 1)
	if _, err := s.Append([][]int64{}); err != nil {
		t.Fatal(err) // empty-batch generation
	}
	if _, err := s.Append([][]int64{{2, 2}}); err != nil {
		t.Fatal(err)
	}
	removed, err := s.Expire(2)
	if err != nil || removed != 1 {
		t.Fatalf("expire all: removed=%d err=%v", removed, err)
	}
	if s.Total() != 0 || s.Dead() != 2 || s.Gens() != 2 {
		t.Fatalf("empty window: total=%d dead=%d gens=%d", s.Total(), s.Dead(), s.Gens())
	}
	// The empty window still accepts appends with absolute numbering.
	if _, err := s.Append([][]int64{{5, 5}}); err != nil {
		t.Fatal(err)
	}
	if s.Gens() != 3 || s.Total() != 1 {
		t.Fatalf("append after expire-all: gens=%d total=%d", s.Gens(), s.Total())
	}
	if n, err := s.GenStart(2); err != nil || n != 0 {
		t.Fatalf("new generation start = %d, %v", n, err)
	}
}

func TestTombstoneDeltaCodec(t *testing.T) {
	b := TombstoneDelta{From: 2, N: 1}.Encode(transport.NewBuilder())
	got, err := DecodeTombstoneDelta(transport.NewReader(b.Bytes()), 2, 3)
	if err != nil || got.From != 2 || got.N != 1 {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	// Prefix-order pin: From must match the receiver's dead count.
	b = TombstoneDelta{From: 1, N: 1}.Encode(transport.NewBuilder())
	if _, err := DecodeTombstoneDelta(transport.NewReader(b.Bytes()), 2, 3); err == nil {
		t.Error("out-of-order tombstone accepted")
	}
	// N outside [1, liveGens] is rejected.
	for _, n := range []int{0, 4} {
		b = TombstoneDelta{From: 2, N: n}.Encode(transport.NewBuilder())
		if _, err := DecodeTombstoneDelta(transport.NewReader(b.Bytes()), 2, 3); err == nil {
			t.Errorf("tombstone N=%d accepted", n)
		}
	}
}

func TestGridDeltaCodecRoundTrip(t *testing.T) {
	s := mkStack(t, 3, 2, 4)
	for gen, batch := range [][][]int64{
		{{0, 0}, {1, 2}, {8, 8}},
		{}, // a party may append nothing while its peer appends
		{{-5, -5}},
	} {
		d, err := s.Append(batch)
		if err != nil {
			t.Fatal(err)
		}
		delta := GridDelta{Gen: gen + 1, Dir: d}
		b := delta.Encode(transport.NewBuilder())
		got, err := DecodeGridDelta(transport.NewReader(b.Bytes()), 2, 4, gen+1)
		if err != nil {
			t.Fatalf("gen %d: %v", gen+1, err)
		}
		if got.Gen != gen+1 || got.Dir.Dim != 2 || len(got.Dir.Cells) != len(d.Cells) {
			t.Fatalf("gen %d round trip mismatch: %+v vs %+v", gen+1, got, delta)
		}
		for i := range d.Cells {
			if Key(got.Dir.Cells[i].Coord) != Key(d.Cells[i].Coord) || got.Dir.Cells[i].Count != d.Cells[i].Count {
				t.Fatalf("gen %d cell %d mismatch", gen+1, i)
			}
		}
	}
}

func TestGridDeltaRejectsWrongGeneration(t *testing.T) {
	s := mkStack(t, 3, 2, 1)
	d, _ := s.Append([][]int64{{0, 0}})
	b := GridDelta{Gen: 2, Dir: d}.Encode(transport.NewBuilder())
	if _, err := DecodeGridDelta(transport.NewReader(b.Bytes()), 2, 1, 1); err == nil {
		t.Error("out-of-sequence delta accepted")
	}
	// Wrong quantum in the embedded directory is also rejected.
	b = GridDelta{Gen: 1, Dir: d}.Encode(transport.NewBuilder())
	if _, err := DecodeGridDelta(transport.NewReader(b.Bytes()), 2, 4, 1); err == nil {
		t.Error("quantum-violating delta accepted")
	}
}
