package spatial

import (
	"testing"

	"repro/internal/transport"
)

func mkStack(t *testing.T, w int64, dim, quantum int) *Stack {
	t.Helper()
	s, err := NewStack(w, dim, quantum)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStackAppendAssignsGlobalIndices(t *testing.T) {
	s := mkStack(t, 4, 2, 2)
	if _, err := s.Append([][]int64{{0, 0}, {1, 1}, {9, 9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([][]int64{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if s.Gens() != 2 || s.Total() != 4 {
		t.Fatalf("gens=%d total=%d, want 2/4", s.Gens(), s.Total())
	}
	// Cell (0,0) holds points 0,1 from gen 0 and point 3 from gen 1.
	members, dummy, err := s.ResolveRange(0, [][]int64{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 1: true, 3: true}
	if len(members) != 3 {
		t.Fatalf("members %v, want 3 of %v", members, want)
	}
	for _, m := range members {
		if !want[m] {
			t.Fatalf("unexpected member %d in %v", m, members)
		}
	}
	// Quantum 2: gen 0 pads 2→2, gen 1 pads 1→2, so one dummy entry.
	if dummy != 1 {
		t.Fatalf("dummy=%d, want 1", dummy)
	}

	// Range [1, 2): only the generation-1 member, padded to the quantum.
	members, dummy, err = s.ResolveRange(1, [][]int64{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0] != 3 || dummy != 1 {
		t.Fatalf("suffix resolve = %v/%d, want [3]/1", members, dummy)
	}
}

func TestStackResolveRangeRejectsBadQueries(t *testing.T) {
	s := mkStack(t, 4, 2, 1)
	if _, err := s.Append([][]int64{{0, 0}, {9, 9}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ResolveRange(0, [][]int64{{5, 5}}); err == nil {
		t.Error("unoccupied cell accepted")
	}
	if _, _, err := s.ResolveRange(0, [][]int64{{2, 2}, {0, 0}}); err == nil {
		t.Error("out-of-order cells accepted")
	}
	if _, _, err := s.ResolveRange(3, nil); err == nil {
		t.Error("out-of-range generation accepted")
	}
	if _, _, err := s.ResolveRange(1, [][]int64{{0, 0}}); err == nil {
		t.Error("cell occupied only before the range accepted")
	}
	if _, err := s.Append([][]int64{{1, 1, 1}}); err == nil {
		t.Error("wrong-dimension append accepted")
	}
}

func TestCandidatesRangeUnionsGenerations(t *testing.T) {
	s := mkStack(t, 4, 2, 2)
	d0, _ := s.Append([][]int64{{0, 0}, {0, 1}}) // cell (0,0), padded 2
	d1, _ := s.Append([][]int64{{5, 5}})         // cell (1,1), padded 2
	d2, _ := s.Append([][]int64{{20, 20}})       // cell (5,5): not adjacent to (0,0)
	dirs := []Directory{d0, d1, d2}

	cells, total := CandidatesRange(dirs, 0, []int64{0, 0})
	if len(cells) != 2 || total != 4 {
		t.Fatalf("full range candidates=%v total=%d, want 2 cells / 4", cells, total)
	}
	cells, total = CandidatesRange(dirs, 1, []int64{0, 0})
	if len(cells) != 1 || total != 2 {
		t.Fatalf("suffix candidates=%v total=%d, want cell (1,1) / 2", cells, total)
	}
	cells, total = CandidatesRange(dirs, 2, []int64{0, 0})
	if len(cells) != 0 || total != 0 {
		t.Fatalf("disjoint suffix candidates=%v total=%d, want none", cells, total)
	}
}

func TestGridDeltaCodecRoundTrip(t *testing.T) {
	s := mkStack(t, 3, 2, 4)
	for gen, batch := range [][][]int64{
		{{0, 0}, {1, 2}, {8, 8}},
		{}, // a party may append nothing while its peer appends
		{{-5, -5}},
	} {
		d, err := s.Append(batch)
		if err != nil {
			t.Fatal(err)
		}
		delta := GridDelta{Gen: gen + 1, Dir: d}
		b := delta.Encode(transport.NewBuilder())
		got, err := DecodeGridDelta(transport.NewReader(b.Bytes()), 2, 4, gen+1)
		if err != nil {
			t.Fatalf("gen %d: %v", gen+1, err)
		}
		if got.Gen != gen+1 || got.Dir.Dim != 2 || len(got.Dir.Cells) != len(d.Cells) {
			t.Fatalf("gen %d round trip mismatch: %+v vs %+v", gen+1, got, delta)
		}
		for i := range d.Cells {
			if Key(got.Dir.Cells[i].Coord) != Key(d.Cells[i].Coord) || got.Dir.Cells[i].Count != d.Cells[i].Count {
				t.Fatalf("gen %d cell %d mismatch", gen+1, i)
			}
		}
	}
}

func TestGridDeltaRejectsWrongGeneration(t *testing.T) {
	s := mkStack(t, 3, 2, 1)
	d, _ := s.Append([][]int64{{0, 0}})
	b := GridDelta{Gen: 2, Dir: d}.Encode(transport.NewBuilder())
	if _, err := DecodeGridDelta(transport.NewReader(b.Bytes()), 2, 1, 1); err == nil {
		t.Error("out-of-sequence delta accepted")
	}
	// Wrong quantum in the embedded directory is also rejected.
	b = GridDelta{Gen: 1, Dir: d}.Encode(transport.NewBuilder())
	if _, err := DecodeGridDelta(transport.NewReader(b.Bytes()), 2, 4, 1); err == nil {
		t.Error("quantum-violating delta accepted")
	}
}
