package multiparty

import (
	"sync"
	"testing"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/metrics"
)

// The multiparty incremental-equivalence harness: a ring (or mesh)
// session absorbing appended batches must, after each append, produce
// labels and decision-level disclosure counts byte-identical to a
// one-shot run over the concatenated data — on every party — while
// actually reusing its cross-run cache.

// streamRows is the shared record stream of the ring case: initial rows
// plus two appended batches (3-D records so a 3-party ring owns one
// column each).
var streamRows = struct {
	init    [][]float64
	batches [][][]float64
}{
	init: [][]float64{
		{1, 1, 1}, {2, 1, 1}, {1, 2, 1}, {2, 2, 2},
		{9, 9, 9}, {9, 8, 9}, {8, 9, 8}, {5, 5, 5},
	},
	batches: [][][]float64{
		{{2, 2, 1}, {9, 9, 8}},
		{{1, 1, 2}, {8, 8, 9}, {12, 2, 7}},
	},
}

func streamConcat(stage int) [][]float64 {
	out := append([][]float64{}, streamRows.init...)
	for i := 0; i < stage; i++ {
		out = append(out, streamRows.batches[i]...)
	}
	return out
}

// runRingStream drives k concurrent RingSessions through an initial run
// plus one append+run per stage, returning per-stage results per party.
func runRingStream(t *testing.T, cfg Config, k, stages int) [][]*Result {
	t.Helper()
	parties := NewLocalRing(k)
	out := make([][]*Result, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer parties[p].Next.Close()
			defer parties[p].Prev.Close()
			slices := splitColumns(streamRows.init, k)
			rs, err := NewRingSession(parties[p], cfg, slices[p])
			if err != nil {
				errs[p] = err
				return
			}
			res, err := rs.Run()
			if err != nil {
				errs[p] = err
				return
			}
			out[p] = append(out[p], res)
			for stage := 0; stage < stages; stage++ {
				batch := splitColumns(streamRows.batches[stage], k)
				if err := rs.Append(batch[p]); err != nil {
					errs[p] = err
					return
				}
				res, err := rs.Run()
				if err != nil {
					errs[p] = err
					return
				}
				out[p] = append(out[p], res)
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func testRingIncremental(t *testing.T, cfg Config) {
	t.Helper()
	const k, stages = 3, 2
	inc := runRingStream(t, cfg, k, stages)
	for stage := 0; stage <= stages; stage++ {
		fresh, err := runRing(t, cfg, splitColumns(streamConcat(stage), k))
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < k; p++ {
			got := inc[p][stage]
			if !metrics.ExactMatch(got.Labels, fresh[p].Labels) {
				t.Errorf("stage %d party %d: labels %v, fresh ring %v", stage, p, got.Labels, fresh[p].Labels)
			}
			if got.PairDecisions != fresh[p].PairDecisions {
				t.Errorf("stage %d party %d: %d pair decisions, fresh ring %d", stage, p, got.PairDecisions, fresh[p].PairDecisions)
			}
			if stage > 0 && got.CachedPairs == 0 {
				t.Errorf("stage %d party %d: cache never hit", stage, p)
			}
			if stage == 0 && got.CachedPairs != 0 {
				t.Errorf("stage %d party %d: first run reports %d cached pairs", stage, p, got.CachedPairs)
			}
		}
	}
}

func TestRingIncrementalEquivalence(t *testing.T) {
	testRingIncremental(t, testCfg(compare.EngineMasked))
}

func TestRingIncrementalEquivalenceParallel(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	cfg.Parallel = 4
	testRingIncremental(t, cfg)
}

func TestRingIncrementalEquivalencePruningOff(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	cfg.Pruning = core.PruneOff
	testRingIncremental(t, cfg)
}

// Mesh: every party holds complete records; appends are per-party.
var meshStream = struct {
	init    [][][]float64
	batches [][][][]float64 // [stage][party]
}{
	init: [][][]float64{
		{{1, 1}, {2, 1}, {9, 9}},
		{{1, 2}, {9, 8}, {5, 5}},
		{{2, 2}, {8, 9}, {12, 2}},
	},
	batches: [][][][]float64{
		{{{2, 3}}, {{8, 8}}, {}},
		{{{9, 7}}, {{3, 2}}, {{7, 9}, {1, 3}}},
	},
}

func meshConcat(party, stage int) [][]float64 {
	out := append([][]float64{}, meshStream.init[party]...)
	for i := 0; i < stage; i++ {
		out = append(out, meshStream.batches[i][party]...)
	}
	return out
}

// runMeshOnce runs the one-shot mesh protocol over the concatenated data
// of one stage.
func runMeshOnce(t *testing.T, cfg Config, stage int) []*HorizontalResult {
	t.Helper()
	const k = 3
	mesh := NewLocalMesh(k)
	out := make([]*HorizontalResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			out[p], errs[p] = RunHorizontal(
				HorizontalParty{Index: p, K: k, Conns: mesh[p]}, cfg, meshConcat(p, stage))
			for q, c := range mesh[p] {
				if q != p {
					c.Close()
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func testMeshIncremental(t *testing.T, cfg Config) {
	t.Helper()
	const k, stages = 3, 2
	mesh := NewLocalMesh(k)
	inc := make([][]*HorizontalResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				for q, c := range mesh[p] {
					if q != p {
						c.Close()
					}
				}
			}()
			ms, err := NewMeshSession(HorizontalParty{Index: p, K: k, Conns: mesh[p]}, cfg, meshStream.init[p])
			if err != nil {
				errs[p] = err
				return
			}
			res, err := ms.Run()
			if err != nil {
				errs[p] = err
				return
			}
			inc[p] = append(inc[p], res)
			for stage := 0; stage < stages; stage++ {
				if err := ms.Append(meshStream.batches[stage][p]); err != nil {
					errs[p] = err
					return
				}
				res, err := ms.Run()
				if err != nil {
					errs[p] = err
					return
				}
				inc[p] = append(inc[p], res)
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for stage := 0; stage <= stages; stage++ {
		fresh := runMeshOnce(t, cfg, stage)
		for p := 0; p < k; p++ {
			got := inc[p][stage]
			if !metrics.ExactMatch(got.Labels, fresh[p].Labels) {
				t.Errorf("stage %d party %d: labels %v, fresh mesh %v", stage, p, got.Labels, fresh[p].Labels)
			}
			if got.RegionQueries != fresh[p].RegionQueries {
				t.Errorf("stage %d party %d: %d region queries, fresh mesh %d", stage, p, got.RegionQueries, fresh[p].RegionQueries)
			}
			if stage > 0 && got.CachedCounts == 0 {
				t.Errorf("stage %d party %d: cache never hit", stage, p)
			}
			if stage == 0 && got.CachedCounts != 0 {
				t.Errorf("stage %d party %d: first run reports %d cached counts", stage, p, got.CachedCounts)
			}
		}
	}
}

func TestMeshIncrementalEquivalence(t *testing.T) {
	testMeshIncremental(t, testCfg(compare.EngineMasked))
}

func TestMeshIncrementalEquivalenceParallel(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	cfg.Parallel = 4
	testMeshIncremental(t, cfg)
}
