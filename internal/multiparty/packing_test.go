package multiparty

import (
	"testing"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/metrics"
)

// The multiparty packing harness mirrors the core one: ring and mesh
// runs under Packing "off", "slots", and "full" must be observably
// identical — labels, pair-decision / region-query budgets, index
// disclosure — while a packed run puts strictly fewer Paillier
// ciphertexts on the wire than the unpacked one, and "full" never puts
// more than "slots". On the mesh "full" is strictly cheaper than
// "slots" on the uplink leg too: a driver's comparison operands are all
// equal (Σx² of the query point), so the grouped uplink collapses each
// batch to one ciphertext.

func packCfg(packing core.PackMode) Config {
	cfg := testCfg(compare.EngineMasked)
	cfg.Packing = packing
	return cfg
}

func ringCts(results []*Result) int64 {
	var n int64
	for _, r := range results {
		n += r.CiphertextsSent
	}
	return n
}

func ringUplink(results []*Result) int64 {
	var n int64
	for _, r := range results {
		n += r.CiphertextsUplink
	}
	return n
}

func meshCts(results []*HorizontalResult) int64 {
	var n int64
	for _, r := range results {
		n += r.CiphertextsSent
	}
	return n
}

func meshUplink(results []*HorizontalResult) int64 {
	var n int64
	for _, r := range results {
		n += r.CiphertextsUplink
	}
	return n
}

// assertRingSplits pins the compatibility invariant on every party:
// the retained sum field equals uplink + downlink.
func assertRingSplits(t *testing.T, label string, results []*Result) {
	t.Helper()
	for p, r := range results {
		if r.CiphertextsSent != r.CiphertextsUplink+r.CiphertextsDownlink {
			t.Errorf("%s party %d: sent %d ≠ uplink %d + downlink %d",
				label, p, r.CiphertextsSent, r.CiphertextsUplink, r.CiphertextsDownlink)
		}
	}
}

func assertMeshSplits(t *testing.T, label string, results []*HorizontalResult) {
	t.Helper()
	for p, r := range results {
		if r.CiphertextsSent != r.CiphertextsUplink+r.CiphertextsDownlink {
			t.Errorf("%s party %d: sent %d ≠ uplink %d + downlink %d",
				label, p, r.CiphertextsSent, r.CiphertextsUplink, r.CiphertextsDownlink)
		}
	}
}

func TestRingPackingEquivalence(t *testing.T) {
	points := gridData(t, 18, 3, 11)
	for _, k := range []int{2, 3} {
		for _, pruning := range []core.PruneMode{core.PruneOff, core.PruneGrid} {
			offCfg := packCfg(core.PackOff)
			offCfg.Pruning = pruning
			offResults, err := runRing(t, offCfg, splitColumns(points, k))
			if err != nil {
				t.Fatalf("k=%d pruning=%s unpacked: %v", k, pruning, err)
			}
			assertRingSplits(t, "off", offResults)
			packed := map[core.PackMode][]*Result{}
			for _, mode := range []core.PackMode{core.PackSlots, core.PackFull} {
				onCfg := packCfg(mode)
				onCfg.Pruning = pruning
				onResults, err := runRing(t, onCfg, splitColumns(points, k))
				if err != nil {
					t.Fatalf("k=%d pruning=%s packing=%s: %v", k, pruning, mode, err)
				}
				packed[mode] = onResults
				assertRingSplits(t, string(mode), onResults)
				for p := range offResults {
					if !metrics.ExactMatch(onResults[p].Labels, offResults[p].Labels) {
						t.Errorf("k=%d pruning=%s packing=%s party %d labels diverge: packed %v, unpacked %v",
							k, pruning, mode, p, onResults[p].Labels, offResults[p].Labels)
					}
					if onResults[p].PairDecisions != offResults[p].PairDecisions {
						t.Errorf("k=%d pruning=%s packing=%s party %d pair decisions: packed %d, unpacked %d",
							k, pruning, mode, p, onResults[p].PairDecisions, offResults[p].PairDecisions)
					}
					if onResults[p].IndexCellCoords != offResults[p].IndexCellCoords {
						t.Errorf("k=%d pruning=%s packing=%s party %d index disclosure: packed %d, unpacked %d",
							k, pruning, mode, p, onResults[p].IndexCellCoords, offResults[p].IndexCellCoords)
					}
				}
				if on, off := ringCts(onResults), ringCts(offResults); on >= off {
					t.Errorf("k=%d pruning=%s packing=%s: packed ring sent %d ciphertexts, unpacked %d — want strictly fewer",
						k, pruning, mode, on, off)
				}
			}
			// "full" never costs more than "slots" (per-instance fallback
			// when the ring's masked sums do not group).
			if full, slots := ringCts(packed[core.PackFull]), ringCts(packed[core.PackSlots]); full > slots {
				t.Errorf("k=%d pruning=%s: full ring sent %d ciphertexts, slots %d — want no growth",
					k, pruning, full, slots)
			}
			if full, slots := ringUplink(packed[core.PackFull]), ringUplink(packed[core.PackSlots]); full > slots {
				t.Errorf("k=%d pruning=%s: full ring uplink %d, slots %d — want no growth",
					k, pruning, full, slots)
			}
		}
	}
}

// TestRingPackingEquivalenceParallel re-runs the k=3 ring under the W=2
// wave scheduler: worker channels carry packed circulations
// independently and the outcome contract is unchanged.
func TestRingPackingEquivalenceParallel(t *testing.T) {
	points := gridData(t, 18, 3, 11)
	offCfg := packCfg(core.PackOff)
	offCfg.Parallel = 2
	offResults, err := runRing(t, offCfg, splitColumns(points, 3))
	if err != nil {
		t.Fatalf("unpacked: %v", err)
	}
	for _, mode := range []core.PackMode{core.PackSlots, core.PackFull} {
		onCfg := packCfg(mode)
		onCfg.Parallel = 2
		onResults, err := runRing(t, onCfg, splitColumns(points, 3))
		if err != nil {
			t.Fatalf("packing=%s: %v", mode, err)
		}
		assertRingSplits(t, string(mode), onResults)
		for p := range offResults {
			if !metrics.ExactMatch(onResults[p].Labels, offResults[p].Labels) {
				t.Errorf("packing=%s party %d labels diverge between packed and unpacked parallel rings", mode, p)
			}
			if onResults[p].PairDecisions != offResults[p].PairDecisions {
				t.Errorf("packing=%s party %d pair decisions: packed %d, unpacked %d",
					mode, p, onResults[p].PairDecisions, offResults[p].PairDecisions)
			}
		}
		if on, off := ringCts(onResults), ringCts(offResults); on >= off {
			t.Errorf("packing=%s: packed parallel ring sent %d ciphertexts, unpacked %d — want strictly fewer", mode, on, off)
		}
	}
}

func TestMeshPackingEquivalence(t *testing.T) {
	for _, pruning := range []core.PruneMode{core.PruneOff, core.PruneGrid} {
		offCfg := packCfg(core.PackOff)
		offCfg.Pruning = pruning
		offResults, offErrs := runMesh(t, sameCfgs(3, offCfg), threePartyPoints)
		for p, err := range offErrs {
			if err != nil {
				t.Fatalf("pruning=%s party %d unpacked: %v", pruning, p, err)
			}
		}
		assertMeshSplits(t, "off", offResults)
		packed := map[core.PackMode][]*HorizontalResult{}
		for _, mode := range []core.PackMode{core.PackSlots, core.PackFull} {
			onCfg := packCfg(mode)
			onCfg.Pruning = pruning
			onResults, onErrs := runMesh(t, sameCfgs(3, onCfg), threePartyPoints)
			for p, err := range onErrs {
				if err != nil {
					t.Fatalf("pruning=%s packing=%s party %d: %v", pruning, mode, p, err)
				}
			}
			packed[mode] = onResults
			assertMeshSplits(t, string(mode), onResults)
			for p := range offResults {
				if !metrics.ExactMatch(onResults[p].Labels, offResults[p].Labels) {
					t.Errorf("pruning=%s packing=%s party %d labels diverge: packed %v, unpacked %v",
						pruning, mode, p, onResults[p].Labels, offResults[p].Labels)
				}
				if onResults[p].RegionQueries != offResults[p].RegionQueries {
					t.Errorf("pruning=%s packing=%s party %d region queries: packed %d, unpacked %d",
						pruning, mode, p, onResults[p].RegionQueries, offResults[p].RegionQueries)
				}
			}
			if on, off := meshCts(onResults), meshCts(offResults); on >= off {
				t.Errorf("pruning=%s packing=%s: packed mesh sent %d ciphertexts, unpacked %d — want strictly fewer",
					pruning, mode, on, off)
			}
		}
		// Every driver batch's comparison operands are equal, so the
		// grouped uplink makes "full" strictly cheaper than "slots" —
		// in total and on the uplink leg specifically.
		if full, slots := meshCts(packed[core.PackFull]), meshCts(packed[core.PackSlots]); full >= slots {
			t.Errorf("pruning=%s: full mesh sent %d ciphertexts, slots %d — want strictly fewer",
				pruning, full, slots)
		}
		if full, slots := meshUplink(packed[core.PackFull]), meshUplink(packed[core.PackSlots]); full >= slots {
			t.Errorf("pruning=%s: full mesh uplink %d, slots %d — want strictly fewer",
				pruning, full, slots)
		}
	}
}

// TestMeshPackingParallelNoGrowth pins the wave scheduler's ciphertext
// contract on the mesh: with W > 1 the driving pass pipelines per-edge
// queries across W mux channels, but the query multiset is identical to
// the sequential schedule — so every party's ciphertext account (total,
// uplink leg, downlink leg) must be exactly the W = 1 count under every
// packing mode, not merely close.
func TestMeshPackingParallelNoGrowth(t *testing.T) {
	for _, mode := range []core.PackMode{core.PackOff, core.PackSlots, core.PackFull} {
		seqCfg := packCfg(mode)
		seqResults, seqErrs := runMesh(t, sameCfgs(3, seqCfg), threePartyPoints)
		for p, err := range seqErrs {
			if err != nil {
				t.Fatalf("packing=%s party %d sequential: %v", mode, p, err)
			}
		}
		parCfg := packCfg(mode)
		parCfg.Parallel = 4
		parResults, parErrs := runMesh(t, sameCfgs(3, parCfg), threePartyPoints)
		for p, err := range parErrs {
			if err != nil {
				t.Fatalf("packing=%s party %d W=4: %v", mode, p, err)
			}
		}
		assertMeshSplits(t, string(mode)+" W=4", parResults)
		for p := range seqResults {
			if !metrics.ExactMatch(parResults[p].Labels, seqResults[p].Labels) {
				t.Errorf("packing=%s party %d labels diverge between W=4 and W=1", mode, p)
			}
			if parResults[p].RegionQueries != seqResults[p].RegionQueries {
				t.Errorf("packing=%s party %d region queries: W=4 %d, W=1 %d",
					mode, p, parResults[p].RegionQueries, seqResults[p].RegionQueries)
			}
			if parResults[p].CiphertextsSent != seqResults[p].CiphertextsSent {
				t.Errorf("packing=%s party %d ciphertexts: W=4 %d, W=1 %d — pipelining must not change the account",
					mode, p, parResults[p].CiphertextsSent, seqResults[p].CiphertextsSent)
			}
			if parResults[p].CiphertextsUplink != seqResults[p].CiphertextsUplink {
				t.Errorf("packing=%s party %d uplink: W=4 %d, W=1 %d",
					mode, p, parResults[p].CiphertextsUplink, seqResults[p].CiphertextsUplink)
			}
			if parResults[p].CiphertextsDownlink != seqResults[p].CiphertextsDownlink {
				t.Errorf("packing=%s party %d downlink: W=4 %d, W=1 %d",
					mode, p, parResults[p].CiphertextsDownlink, seqResults[p].CiphertextsDownlink)
			}
		}
	}
}

// TestPackingRequiresBatched pins the validation rule shared with the
// two-party stack: slot packing presupposes the batched round structure.
func TestPackingRequiresBatched(t *testing.T) {
	for _, mode := range []core.PackMode{core.PackSlots, core.PackFull} {
		cfg := packCfg(mode)
		cfg.Batching = core.BatchModeSequential
		if err := cfg.withDefaults().validate(); err == nil {
			t.Fatalf("sequential batching with %s packing validated", mode)
		}
	}
}
