package multiparty

import (
	"testing"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/metrics"
)

// The multiparty packing harness mirrors the core one: ring and mesh
// runs under Packing "off" and "slots" must be observably identical —
// labels, pair-decision / region-query budgets, index disclosure — while
// the packed run puts strictly fewer Paillier ciphertexts on the wire.

func packCfg(packing core.PackMode) Config {
	cfg := testCfg(compare.EngineMasked)
	cfg.Packing = packing
	return cfg
}

func ringCts(results []*Result) int64 {
	var n int64
	for _, r := range results {
		n += r.CiphertextsSent
	}
	return n
}

func meshCts(results []*HorizontalResult) int64 {
	var n int64
	for _, r := range results {
		n += r.CiphertextsSent
	}
	return n
}

func TestRingPackingEquivalence(t *testing.T) {
	points := gridData(t, 18, 3, 11)
	for _, k := range []int{2, 3} {
		for _, pruning := range []core.PruneMode{core.PruneOff, core.PruneGrid} {
			offCfg := packCfg(core.PackOff)
			offCfg.Pruning = pruning
			offResults, err := runRing(t, offCfg, splitColumns(points, k))
			if err != nil {
				t.Fatalf("k=%d pruning=%s unpacked: %v", k, pruning, err)
			}
			onCfg := packCfg(core.PackSlots)
			onCfg.Pruning = pruning
			onResults, err := runRing(t, onCfg, splitColumns(points, k))
			if err != nil {
				t.Fatalf("k=%d pruning=%s packed: %v", k, pruning, err)
			}
			for p := range offResults {
				if !metrics.ExactMatch(onResults[p].Labels, offResults[p].Labels) {
					t.Errorf("k=%d pruning=%s party %d labels diverge: packed %v, unpacked %v",
						k, pruning, p, onResults[p].Labels, offResults[p].Labels)
				}
				if onResults[p].PairDecisions != offResults[p].PairDecisions {
					t.Errorf("k=%d pruning=%s party %d pair decisions: packed %d, unpacked %d",
						k, pruning, p, onResults[p].PairDecisions, offResults[p].PairDecisions)
				}
				if onResults[p].IndexCellCoords != offResults[p].IndexCellCoords {
					t.Errorf("k=%d pruning=%s party %d index disclosure: packed %d, unpacked %d",
						k, pruning, p, onResults[p].IndexCellCoords, offResults[p].IndexCellCoords)
				}
			}
			if on, off := ringCts(onResults), ringCts(offResults); on >= off {
				t.Errorf("k=%d pruning=%s: packed ring sent %d ciphertexts, unpacked %d — want strictly fewer",
					k, pruning, on, off)
			}
		}
	}
}

// TestRingPackingEquivalenceParallel re-runs the k=3 ring under the W=2
// wave scheduler: worker channels carry packed circulations
// independently and the outcome contract is unchanged.
func TestRingPackingEquivalenceParallel(t *testing.T) {
	points := gridData(t, 18, 3, 11)
	offCfg := packCfg(core.PackOff)
	offCfg.Parallel = 2
	offResults, err := runRing(t, offCfg, splitColumns(points, 3))
	if err != nil {
		t.Fatalf("unpacked: %v", err)
	}
	onCfg := packCfg(core.PackSlots)
	onCfg.Parallel = 2
	onResults, err := runRing(t, onCfg, splitColumns(points, 3))
	if err != nil {
		t.Fatalf("packed: %v", err)
	}
	for p := range offResults {
		if !metrics.ExactMatch(onResults[p].Labels, offResults[p].Labels) {
			t.Errorf("party %d labels diverge between packed and unpacked parallel rings", p)
		}
		if onResults[p].PairDecisions != offResults[p].PairDecisions {
			t.Errorf("party %d pair decisions: packed %d, unpacked %d",
				p, onResults[p].PairDecisions, offResults[p].PairDecisions)
		}
	}
	if on, off := ringCts(onResults), ringCts(offResults); on >= off {
		t.Errorf("packed parallel ring sent %d ciphertexts, unpacked %d — want strictly fewer", on, off)
	}
}

func TestMeshPackingEquivalence(t *testing.T) {
	for _, pruning := range []core.PruneMode{core.PruneOff, core.PruneGrid} {
		offCfg := packCfg(core.PackOff)
		offCfg.Pruning = pruning
		offResults, offErrs := runMesh(t, sameCfgs(3, offCfg), threePartyPoints)
		for p, err := range offErrs {
			if err != nil {
				t.Fatalf("pruning=%s party %d unpacked: %v", pruning, p, err)
			}
		}
		onCfg := packCfg(core.PackSlots)
		onCfg.Pruning = pruning
		onResults, onErrs := runMesh(t, sameCfgs(3, onCfg), threePartyPoints)
		for p, err := range onErrs {
			if err != nil {
				t.Fatalf("pruning=%s party %d packed: %v", pruning, p, err)
			}
		}
		for p := range offResults {
			if !metrics.ExactMatch(onResults[p].Labels, offResults[p].Labels) {
				t.Errorf("pruning=%s party %d labels diverge: packed %v, unpacked %v",
					pruning, p, onResults[p].Labels, offResults[p].Labels)
			}
			if onResults[p].RegionQueries != offResults[p].RegionQueries {
				t.Errorf("pruning=%s party %d region queries: packed %d, unpacked %d",
					pruning, p, onResults[p].RegionQueries, offResults[p].RegionQueries)
			}
		}
		if on, off := meshCts(onResults), meshCts(offResults); on >= off {
			t.Errorf("pruning=%s: packed mesh sent %d ciphertexts, unpacked %d — want strictly fewer",
				pruning, on, off)
		}
	}
}

// TestPackingRequiresBatched pins the validation rule shared with the
// two-party stack: slot packing presupposes the batched round structure.
func TestPackingRequiresBatched(t *testing.T) {
	cfg := packCfg(core.PackSlots)
	cfg.Batching = core.BatchModeSequential
	if err := cfg.withDefaults().validate(); err == nil {
		t.Fatal("sequential batching with slot packing validated")
	}
}
