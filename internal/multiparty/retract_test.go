package multiparty

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/spatial"
)

// The multiparty retraction-equivalence harness: a ring (or mesh)
// session deleting individual live records must produce labels and
// decision-level disclosure counts identical to a one-shot run over
// exactly the surviving records, on every party, while the pair bits and
// count segments untouched by the retraction keep contributing.

// ringRetractGens is the shared record stream, one batch per generation;
// every retraction targets the newest generation.
var ringRetractGens = [][][]float64{
	{{1, 1, 1}, {2, 1, 1}, {9, 9, 9}, {9, 8, 9}},
	{{1, 2, 1}, {8, 9, 8}, {5, 5, 5}},
	{{2, 2, 2}, {9, 9, 8}, {8, 8, 6}, {1, 1, 2}},
}

// ringRetractSteps are the scripted retraction exchanges; the records
// are shared, so every party circulates the same id lists (step 2's ids
// are in the live numbering step 1's compaction leaves).
var ringRetractSteps = [][]int{
	{8, 10},
	{8},
}

// retractDrop removes the strictly ascending ids from rows — the
// survivor list a retraction leaves, in its compacted numbering.
func retractDrop[T any](rows []T, ids []int) []T {
	out := make([]T, 0, len(rows)-len(ids))
	next := 0
	for i, r := range rows {
		if next < len(ids) && ids[next] == i {
			next++
			continue
		}
		out = append(out, r)
	}
	return out
}

// ringRetractSurvivors returns the per-stage survivor snapshots of the
// shared record stream (stage 0 = nothing retracted).
func ringRetractSurvivors() [][][]float64 {
	full := ringRetractConcat()
	at := [][][]float64{full}
	for _, ids := range ringRetractSteps {
		at = append(at, retractDrop(at[len(at)-1], ids))
	}
	return at
}

func ringRetractConcat() [][]float64 {
	var out [][]float64
	for _, g := range ringRetractGens {
		out = append(out, g...)
	}
	return out
}

// runRingRetracted drives k concurrent RingSessions through the scripted
// retractions: fill (construct + appends), run, then retract + run per
// step.
func runRingRetracted(t *testing.T, cfg Config, k int) [][]*Result {
	t.Helper()
	parties := NewLocalRing(k)
	out := make([][]*Result, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer parties[p].Next.Close()
			defer parties[p].Prev.Close()
			rs, err := NewRingSession(parties[p], cfg, splitColumns(ringRetractGens[0], k)[p])
			if err != nil {
				errs[p] = err
				return
			}
			drive := func() error {
				res, err := rs.Run()
				if err != nil {
					return err
				}
				out[p] = append(out[p], res)
				return nil
			}
			for gen := 1; gen < len(ringRetractGens); gen++ {
				if errs[p] = rs.Append(splitColumns(ringRetractGens[gen], k)[p]); errs[p] != nil {
					return
				}
			}
			if errs[p] = drive(); errs[p] != nil {
				return
			}
			for _, ids := range ringRetractSteps {
				if errs[p] = rs.Retract(ids); errs[p] != nil {
					return
				}
				if errs[p] = drive(); errs[p] != nil {
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func testRingRetracted(t *testing.T, cfg Config) {
	t.Helper()
	const k = 3
	inc := runRingRetracted(t, cfg, k)
	rowsAt := ringRetractSurvivors()
	for stage := 0; stage <= len(ringRetractSteps); stage++ {
		fresh, err := runRing(t, cfg, splitColumns(rowsAt[stage], k))
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < k; p++ {
			got := inc[p][stage]
			if !metrics.ExactMatch(got.Labels, fresh[p].Labels) {
				t.Errorf("stage %d party %d: labels %v, fresh ring %v", stage, p, got.Labels, fresh[p].Labels)
			}
			if got.PairDecisions != fresh[p].PairDecisions {
				t.Errorf("stage %d party %d: %d pair decisions, fresh ring %d", stage, p, got.PairDecisions, fresh[p].PairDecisions)
			}
			if stage > 0 && got.CachedPairs == 0 {
				t.Errorf("stage %d party %d: cache never hit across the retraction", stage, p)
			}
		}
	}
}

func TestRingRetractionEquivalence(t *testing.T) {
	testRingRetracted(t, testCfg(compare.EngineMasked))
}

func TestRingRetractionEquivalenceParallel(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	cfg.Parallel = 4
	testRingRetracted(t, cfg)
}

func TestRingRetractionEquivalencePruningOff(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	cfg.Pruning = core.PruneOff
	testRingRetracted(t, cfg)
}

// Ring retraction misuse: bad arguments fail locally on every party
// without touching the wire; mismatched id lists across parties fail
// loudly in the tombstone circulation instead of silently diverging.
func TestRingRetractMisuse(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	const k = 3
	parties := NewLocalRing(k)
	errs := make([]error, k)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer parties[p].Next.Close()
			defer parties[p].Prev.Close()
			rs, err := NewRingSession(parties[p], cfg, splitColumns(ringRetractGens[0], k)[p])
			if err != nil {
				errs[p] = err
				return
			}
			// Local validation: no wire traffic, so one party's rejection
			// cannot wedge the others.
			if err := rs.Retract(nil); err == nil {
				mu.Lock()
				errs[p] = errExpected("empty Retract accepted")
				mu.Unlock()
				return
			}
			n := len(ringRetractGens[0])
			over := make([]int, n+1)
			for i := range over {
				over[i] = i
			}
			if err := rs.Retract(over); !errors.Is(err, spatial.ErrGenRange) {
				mu.Lock()
				errs[p] = errExpected("over-retraction did not return ErrGenRange")
				mu.Unlock()
				return
			}
			if err := rs.Retract([]int{1, 0}); err == nil {
				mu.Lock()
				errs[p] = errExpected("unsorted Retract accepted")
				mu.Unlock()
				return
			}
			// Mismatched id lists: party 2 names a different record. The
			// circulation must fail on every party before anyone mutates.
			ids := []int{2}
			if p == 2 {
				ids = []int{1}
			}
			if err := rs.Retract(ids); err == nil {
				mu.Lock()
				errs[p] = errExpected("mismatched Retract succeeded")
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Errorf("party %d: %v", p, err)
		}
	}
}

// Mesh: every party holds complete records and retracts its own; a party
// with nothing to delete participates with an empty list.
var meshRetractGens = [][][][]float64{ // [gen][party]
	{{{1, 1}, {2, 1}}, {{1, 2}, {9, 8}}, {{2, 2}, {8, 9}}},
	{{{9, 9}, {3, 3}}, {{5, 5}}, {{2, 3}}},
	{{{3, 2}, {9, 7}}, {{8, 8}, {1, 3}}, {{7, 9}}},
}

// meshRetractSteps are the per-party id lists of each retraction
// exchange, in the live numbering current at that step.
var meshRetractSteps = [][][]int{ // [step][party]
	{{5}, {4}, {}},
	{{4}, {}, {3}},
}

// meshRetractSurvivors returns party p's survivor snapshot after the
// first `stage` retraction steps.
func meshRetractSurvivors(p, stage int) [][]float64 {
	var rows [][]float64
	for _, g := range meshRetractGens {
		rows = append(rows, g[p]...)
	}
	for s := 0; s < stage; s++ {
		rows = retractDrop(rows, meshRetractSteps[s][p])
	}
	return rows
}

// runMeshRetractOnce runs the one-shot mesh protocol over the survivors
// of the first `stage` retraction steps.
func runMeshRetractOnce(t *testing.T, cfg Config, stage int) []*HorizontalResult {
	t.Helper()
	const k = 3
	mesh := NewLocalMesh(k)
	out := make([]*HorizontalResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			out[p], errs[p] = RunHorizontal(
				HorizontalParty{Index: p, K: k, Conns: mesh[p]}, cfg, meshRetractSurvivors(p, stage))
			for q, c := range mesh[p] {
				if q != p {
					c.Close()
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func testMeshRetracted(t *testing.T, cfg Config) {
	t.Helper()
	const k = 3
	mesh := NewLocalMesh(k)
	inc := make([][]*HorizontalResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				for q, c := range mesh[p] {
					if q != p {
						c.Close()
					}
				}
			}()
			ms, err := NewMeshSession(HorizontalParty{Index: p, K: k, Conns: mesh[p]}, cfg, meshRetractGens[0][p])
			if err != nil {
				errs[p] = err
				return
			}
			drive := func() error {
				res, err := ms.Run()
				if err != nil {
					return err
				}
				inc[p] = append(inc[p], res)
				return nil
			}
			for gen := 1; gen < len(meshRetractGens); gen++ {
				if errs[p] = ms.Append(meshRetractGens[gen][p]); errs[p] != nil {
					return
				}
			}
			if errs[p] = drive(); errs[p] != nil {
				return
			}
			for _, step := range meshRetractSteps {
				if errs[p] = ms.Retract(step[p]); errs[p] != nil {
					return
				}
				if errs[p] = drive(); errs[p] != nil {
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for stage := 0; stage <= len(meshRetractSteps); stage++ {
		fresh := runMeshRetractOnce(t, cfg, stage)
		for p := 0; p < k; p++ {
			got := inc[p][stage]
			if !metrics.ExactMatch(got.Labels, fresh[p].Labels) {
				t.Errorf("stage %d party %d: labels %v, fresh mesh %v", stage, p, got.Labels, fresh[p].Labels)
			}
			if got.RegionQueries != fresh[p].RegionQueries {
				t.Errorf("stage %d party %d: %d region queries, fresh mesh %d", stage, p, got.RegionQueries, fresh[p].RegionQueries)
			}
			if stage > 0 && got.CachedCounts == 0 {
				t.Errorf("stage %d party %d: cache never hit across the retraction", stage, p)
			}
		}
	}
}

func TestMeshRetractionEquivalence(t *testing.T) {
	testMeshRetracted(t, testCfg(compare.EngineMasked))
}

func TestMeshRetractionEquivalenceParallel(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	cfg.Parallel = 4
	testMeshRetracted(t, cfg)
}

// Mesh retraction misuse: invalid id lists fail locally with the shared
// typed error before any tombstone crosses an edge.
func TestMeshRetractMisuse(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	const k = 2
	mesh := NewLocalMesh(k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				for q, c := range mesh[p] {
					if q != p {
						c.Close()
					}
				}
			}()
			ms, err := NewMeshSession(HorizontalParty{Index: p, K: k, Conns: mesh[p]}, cfg, meshRetractGens[0][p])
			if err != nil {
				errs[p] = err
				return
			}
			n := len(meshRetractGens[0][p])
			over := make([]int, n+1)
			for i := range over {
				over[i] = i
			}
			if err := ms.Retract(over); !errors.Is(err, spatial.ErrGenRange) {
				errs[p] = errExpected("over-retraction did not return ErrGenRange")
				return
			}
			if err := ms.Retract([]int{n}); !errors.Is(err, spatial.ErrGenRange) {
				errs[p] = errExpected("out-of-range Retract did not return ErrGenRange")
				return
			}
			// The guards left the session serviceable: party 0 retracts a
			// record, party 1 participates with an empty list, and the mesh
			// still clusters.
			ids := []int{}
			if p == 0 {
				ids = []int{0}
			}
			if err := ms.Retract(ids); err != nil {
				errs[p] = err
				return
			}
			if _, err := ms.Run(); err != nil {
				errs[p] = err
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Errorf("party %d: %v", p, err)
		}
	}
}
