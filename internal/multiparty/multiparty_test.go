package multiparty

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/transport"
)

// splitColumns slices an n×m matrix into k column groups (first groups get
// the remainder columns).
func splitColumns(points [][]float64, k int) [][][]float64 {
	m := len(points[0])
	base := m / k
	extra := m % k
	out := make([][][]float64, k)
	col := 0
	for p := 0; p < k; p++ {
		w := base
		if p < extra {
			w++
		}
		part := make([][]float64, len(points))
		for i, row := range points {
			part[i] = append([]float64{}, row[col:col+w]...)
		}
		out[p] = part
		col += w
	}
	return out
}

// runRing executes all k parties concurrently and returns their results.
func runRing(t *testing.T, cfg Config, slices [][][]float64) ([]*Result, error) {
	t.Helper()
	k := len(slices)
	parties := NewLocalRing(k)
	results := make([]*Result, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p], errs[p] = Run(parties[p], cfg, slices[p])
			parties[p].Next.Close()
			parties[p].Prev.Close()
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

func testCfg(engine compare.EngineKind) Config {
	return Config{
		Eps:           3,
		MinPts:        3,
		MaxCoord:      15,
		PaillierBits:  256,
		RSABits:       256,
		Engine:        engine,
		ShareMaskBits: 8,
	}
}

// oracle computes plain DBSCAN on the joined records.
func oracle(t *testing.T, cfg Config, points [][]float64) dbscan.Result {
	t.Helper()
	enc := make([][]int64, len(points))
	for i, row := range points {
		r := make([]int64, len(row))
		for j, v := range row {
			r[j] = int64(v)
		}
		enc[i] = r
	}
	epsSq := int64(cfg.Eps * cfg.Eps)
	res, err := dbscan.ClusterInt(enc, epsSq, cfg.MinPts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func gridData(t *testing.T, n, dim int, seed int64) [][]float64 {
	t.Helper()
	d := dataset.BlobsDim(n, 2, dim, 0.3, seed)
	q, _ := dataset.Quantize(d, 16)
	return q.Points
}

func TestThreePartiesMatchPlainDBSCAN(t *testing.T) {
	points := gridData(t, 24, 3, 5)
	cfg := testCfg(compare.EngineMasked)
	results, err := runRing(t, cfg, splitColumns(points, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, cfg, points)
	for p, r := range results {
		if !metrics.ExactMatch(r.Labels, want.Labels) {
			t.Errorf("party %d labels diverge from plain DBSCAN", p)
		}
		if r.NumClusters != want.NumClusters {
			t.Errorf("party %d clusters = %d, want %d", p, r.NumClusters, want.NumClusters)
		}
		if r.PairDecisions == 0 {
			t.Errorf("party %d recorded no pair decisions", p)
		}
	}
}

func TestFourPartiesMatchPlainDBSCAN(t *testing.T) {
	points := gridData(t, 20, 4, 9)
	cfg := testCfg(compare.EngineMasked)
	results, err := runRing(t, cfg, splitColumns(points, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, cfg, points)
	for p, r := range results {
		if !metrics.ExactMatch(r.Labels, want.Labels) {
			t.Errorf("party %d labels diverge", p)
		}
	}
}

func TestYMPPEngineRing(t *testing.T) {
	points := gridData(t, 12, 3, 11)
	cfg := testCfg(compare.EngineYMPP)
	results, err := runRing(t, cfg, splitColumns(points, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, cfg, points)
	for p, r := range results {
		if !metrics.ExactMatch(r.Labels, want.Labels) {
			t.Errorf("party %d labels diverge under YMPP", p)
		}
	}
}

// With k = 2 the ring must agree with the two-party vertical protocol.
func TestTwoPartyRingMatchesCoreVertical(t *testing.T) {
	points := gridData(t, 18, 2, 7)
	cfg := testCfg(compare.EngineMasked)
	ringResults, err := runRing(t, cfg, splitColumns(points, 2))
	if err != nil {
		t.Fatal(err)
	}

	split, err := partition.Vertical(points, 1)
	if err != nil {
		t.Fatal(err)
	}
	coreCfg := core.Config{
		Eps: cfg.Eps, MinPts: cfg.MinPts, MaxCoord: cfg.MaxCoord,
		PaillierBits: 256, RSABits: 256, Engine: compare.EngineMasked, Seed: 3,
	}
	var coreRes *core.Result
	err = transport.Run2(
		func(c transport.Conn) error {
			r, err := core.VerticalAlice(c, coreCfg, split.Alice)
			coreRes = r
			return err
		},
		func(c transport.Conn) error {
			_, err := core.VerticalBob(c, coreCfg, split.Bob)
			return err
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.ExactMatch(ringResults[0].Labels, coreRes.Labels) {
		t.Error("2-party ring diverges from core vertical protocol")
	}
}

func TestHandshakeRejectsDisagreement(t *testing.T) {
	points := gridData(t, 10, 3, 3)
	slices := splitColumns(points, 3)
	parties := NewLocalRing(3)
	cfgs := []Config{testCfg(compare.EngineMasked), testCfg(compare.EngineMasked), testCfg(compare.EngineMasked)}
	cfgs[1].Eps = 5 // party 1 disagrees

	errs := make([]error, 3)
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			_, errs[p] = Run(parties[p], cfgs[p], slices[p])
			parties[p].Next.Close()
			parties[p].Prev.Close()
		}(p)
	}
	wg.Wait()
	found := false
	for _, err := range errs {
		if errors.Is(err, ErrHandshake) {
			found = true
		}
	}
	if !found {
		t.Errorf("no party reported ErrHandshake: %v", errs)
	}
}

func TestPartyValidation(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	bad := []Party{
		{Index: 0, K: 1, Prev: a, Next: b},
		{Index: 2, K: 2, Prev: a, Next: b},
		{Index: 0, K: 2, Prev: nil, Next: b},
	}
	for i, p := range bad {
		if _, err := Run(p, testCfg(compare.EngineMasked), [][]float64{{1}}); err == nil {
			t.Errorf("case %d: invalid party accepted", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	parties := NewLocalRing(2)
	defer func() {
		for _, p := range parties {
			p.Next.Close()
			p.Prev.Close()
		}
	}()
	bad := testCfg(compare.EngineMasked)
	bad.Eps = 0
	if _, err := Run(parties[0], bad, [][]float64{{1}}); err == nil {
		t.Error("Eps=0 accepted")
	}
	bad = testCfg(compare.EngineMasked)
	bad.MinPts = 0
	if _, err := Run(parties[0], bad, [][]float64{{1}}); err == nil {
		t.Error("MinPts=0 accepted")
	}
	if _, err := Run(parties[0], testCfg(compare.EngineMasked), nil); err == nil {
		t.Error("empty records accepted")
	}
	if _, err := Run(parties[0], testCfg(compare.EngineMasked), [][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged records accepted")
	}
	if _, err := Run(parties[0], testCfg(compare.EngineMasked), [][]float64{{999}}); err == nil {
		t.Error("out-of-grid coordinate accepted")
	}
}

func TestNewLocalRingTopology(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		parties := NewLocalRing(k)
		if len(parties) != k {
			t.Fatalf("k=%d: got %d parties", k, len(parties))
		}
		// Sending on party p's Next must arrive at party (p+1)%k's Prev.
		for p := 0; p < k; p++ {
			msg := []byte{byte(p)}
			if err := parties[p].Next.Send(msg); err != nil {
				t.Fatal(err)
			}
			got, err := parties[(p+1)%k].Prev.Recv()
			if err != nil || got[0] != byte(p) {
				t.Fatalf("k=%d: ring edge %d broken: %v %v", k, p, got, err)
			}
		}
		for _, p := range parties {
			p.Next.Close()
			p.Prev.Close()
		}
	}
}

// Property: random small instances across ring sizes always match plain
// DBSCAN exactly.
func TestRingPropertyRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("crypto-heavy property test")
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 3; trial++ {
		k := 2 + rng.Intn(3) // 2..4 parties
		dim := k             // at least one column each
		n := 8 + rng.Intn(8)
		points := make([][]float64, n)
		for i := range points {
			row := make([]float64, dim)
			for j := range row {
				row[j] = float64(rng.Intn(16))
			}
			points[i] = row
		}
		cfg := testCfg(compare.EngineMasked)
		cfg.Eps = float64(2 + rng.Intn(3))
		results, err := runRing(t, cfg, splitColumns(points, k))
		if err != nil {
			t.Fatalf("trial %d (k=%d): %v", trial, k, err)
		}
		want := oracle(t, cfg, points)
		for p, r := range results {
			if !metrics.ExactMatch(r.Labels, want.Labels) {
				t.Errorf("trial %d: party %d of %d diverges", trial, p, k)
			}
		}
	}
}
