package multiparty

import (
	"testing"

	"repro/internal/compare"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

// Parallel equivalence for the multiparty extensions: the ring's
// per-worker batch circulations and the mesh's concurrent peer fan-out
// must reproduce the sequential schedule's labels and disclosure counts
// exactly.

func TestRingParallelEquivalence(t *testing.T) {
	d, _ := dataset.Quantize(dataset.BlobsDim(18, 2, 3, 0.3, 5), 16)
	slices := splitColumns(d.Points, 3)

	base := testCfg(compare.EngineMasked)
	seqResults, err := runRing(t, base, slices)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		cfg := base
		cfg.Parallel = w
		parResults, err := runRing(t, cfg, slices)
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		for p := range parResults {
			if !metrics.ExactMatch(parResults[p].Labels, seqResults[p].Labels) {
				t.Errorf("W=%d: party %d labels diverge: %v vs %v", w, p, parResults[p].Labels, seqResults[p].Labels)
			}
			if parResults[p].NumClusters != seqResults[p].NumClusters {
				t.Errorf("W=%d: party %d cluster count %d vs %d", w, p, parResults[p].NumClusters, seqResults[p].NumClusters)
			}
			if parResults[p].PairDecisions != seqResults[p].PairDecisions {
				t.Errorf("W=%d: party %d pair decisions %d vs %d", w, p, parResults[p].PairDecisions, seqResults[p].PairDecisions)
			}
			if parResults[p].IndexCellCoords != seqResults[p].IndexCellCoords {
				t.Errorf("W=%d: party %d index coords %d vs %d", w, p, parResults[p].IndexCellCoords, seqResults[p].IndexCellCoords)
			}
		}
	}
}

// runMeshOne runs the mesh with one shared config and fails on any error.
func runMeshOne(t *testing.T, cfg Config, slices [][][]float64) ([]*HorizontalResult, error) {
	t.Helper()
	results, errs := runMesh(t, sameCfgs(len(slices), cfg), slices)
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

func TestMeshParallelEquivalence(t *testing.T) {
	d, _ := dataset.Quantize(dataset.Blobs(18, 2, 0.3, 9), 16)
	split, err := partitionHorizontal3(d.Points)
	if err != nil {
		t.Fatal(err)
	}

	base := testCfg(compare.EngineMasked)
	seqResults, err := runMeshOne(t, base, split)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		cfg := base
		cfg.Parallel = w
		parResults, err := runMeshOne(t, cfg, split)
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		for p := range parResults {
			if !metrics.ExactMatch(parResults[p].Labels, seqResults[p].Labels) {
				t.Errorf("W=%d: party %d labels diverge: %v vs %v", w, p, parResults[p].Labels, seqResults[p].Labels)
			}
			if parResults[p].RegionQueries != seqResults[p].RegionQueries {
				t.Errorf("W=%d: party %d region queries %d vs %d", w, p, parResults[p].RegionQueries, seqResults[p].RegionQueries)
			}
			// The wave scheduler may reorder frames but never changes the
			// query multiset, so the ciphertext account is exact.
			if parResults[p].CiphertextsSent != seqResults[p].CiphertextsSent {
				t.Errorf("W=%d: party %d ciphertexts %d vs %d", w, p, parResults[p].CiphertextsSent, seqResults[p].CiphertextsSent)
			}
		}
	}
}

// partitionHorizontal3 deals points round-robin into three parties.
func partitionHorizontal3(points [][]float64) ([][][]float64, error) {
	out := make([][][]float64, 3)
	for i, pt := range points {
		out[i%3] = append(out[i%3], pt)
	}
	return out, nil
}
