// Package multiparty implements the paper's stated extension ("the
// two-party algorithm can be extended to multi-party cases", §1) for
// vertically partitioned data: k ≥ 2 parties arranged in a ring each hold
// a column slice of every record and jointly compute the DBSCAN clustering
// of the virtual database, with every party learning the labels — the
// k-party generalization of §4.3.
//
// # Protocol
//
// Per pairwise distance decision, each party computes its local partial
// sum s_p of squared attribute differences. The coordinator (party 0)
// starts a homomorphic accumulation around the ring under its Paillier
// key:
//
//	c_0 = E(s_0)                       coordinator → party 1
//	c_p = c_{p−1} · E(s_p)             party p → party p+1
//	c_last = c_{k−2} · E(s_{k−1} + v)  last party → coordinator, v fresh
//
// The coordinator decrypts t = Σ s_p + v; the mask v (known only to the
// last party) hides the true distance. A two-party secure comparison
// between coordinator (left: t) and last party (right: Eps² + v) — over
// the existing ring edge, using either engine from internal/compare —
// yields the within-Eps bit, which the coordinator then circulates around
// the ring. All parties run core.LockstepCluster with this oracle.
//
// With k = 2 the ring degenerates to the two-party vertical protocol
// (party 1 is both accumulator and masker), which the tests use for
// cross-validation.
//
// # Disclosure
//
// Beyond the output labels, each party sees only re-randomized
// ciphertexts under the coordinator's key; the coordinator sees masked
// sums t = dist² + v; the last party knows the masks. Each pairwise bit
// is public to all parties (as in Theorem 10). Intermediate parties must
// not collude with the coordinator (standard for ring aggregation;
// documented in DESIGN.md).
package multiparty

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync/atomic"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/fixedpoint"
	"repro/internal/paillier"
	"repro/internal/spatial"
	"repro/internal/transport"
	"repro/internal/yao"
)

// Config mirrors core.Config for the k-party setting. All parties must
// agree on every field; the ring handshake verifies this.
type Config struct {
	Eps      float64
	MinPts   int
	Scale    float64
	Offset   float64
	MaxCoord int64

	PaillierBits  int
	RSABits       int
	Engine        compare.EngineKind
	CmpMaskBits   int
	ShareMaskBits int // mask magnitude for the ring sums: v ∈ [0, 2^bits)

	// Batching mirrors core.Config.Batching: under the default batched
	// mode one ring circulation carries the ciphertexts of a whole
	// lockstep neighborhood and the coordinator↔last comparison is one
	// BatchLessEq, so a neighborhood costs O(k) messages instead of
	// O(k·n). Sequential mode keeps one circulation per pair.
	Batching core.BatchMode

	// Packing mirrors core.Config.Packing: under the default "slots" mode
	// a ring circulation packs S masked sums per Paillier plaintext
	// (internal/encoding), so a batch of n pairs costs ⌈n/S⌉ ciphertexts
	// per hop instead of n, and the masked comparison engine packs its
	// reply direction the same way. "full" additionally turns on the
	// masked engine's packed comparison uplink (per-batch moded wire
	// form, never more ciphertexts than "slots"). "off" keeps one
	// ciphertext per value. All parties must agree (ring token); any
	// packing requires the batched round structure.
	Packing core.PackMode

	// Pruning mirrors core.Config.Pruning: under the default grid mode
	// each party discloses the Eps-grid cell coordinates of every record
	// over its own columns (two ring circulations, tag ring.idx); all
	// parties assemble the same full cell matrix and decide non-adjacent
	// pairs out of range locally, so those pairs never circulate.
	Pruning core.PruneMode

	// PruneQuantum mirrors core.Config.PruneQuantum (used by the
	// horizontal mesh's padded occupancy directories).
	PruneQuantum int

	// Parallel mirrors core.Config.Parallel: with W > 1 every ring edge is
	// multiplexed into W worker channels (transport.Mux) and the shared
	// parallel lockstep scheduler circulates up to W independent pair
	// batches around the ring concurrently — per-worker accumulation,
	// comparison, and broadcast — overlapping their round trips. In the
	// horizontal mesh W > 1 fans each region query's per-peer HDP
	// sub-queries out concurrently across the mesh edges. All parties must
	// agree (checked by the ring token / mesh handshake); W > 1 requires
	// the batched round structure. Labels and disclosure counts are
	// identical to the sequential schedule.
	Parallel int

	// Pool, when non-nil, routes this party's Paillier/RSA batch
	// arithmetic over a process-shared bounded worker pool instead of a
	// per-call GOMAXPROCS fan-out — the knob a host process serving many
	// concurrent clustering sessions uses to keep the CPU subscribed
	// rather than oversubscribed. Local resource only; the ring handshake
	// does not (and must not) compare it.
	Pool *paillier.Pool

	Random io.Reader
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.MaxCoord == 0 {
		c.MaxCoord = core.DefaultMaxCoord
	}
	if c.PaillierBits == 0 {
		c.PaillierBits = core.DefaultPaillierBits
	}
	if c.RSABits == 0 {
		c.RSABits = core.DefaultRSABits
	}
	if c.Engine == "" {
		c.Engine = compare.EngineYMPP
	}
	if c.CmpMaskBits == 0 {
		c.CmpMaskBits = core.DefaultCmpMaskBits
	}
	if c.ShareMaskBits == 0 {
		c.ShareMaskBits = core.DefaultShareMaskBits
	}
	if c.Batching == "" {
		c.Batching = core.BatchModeBatched
	}
	if c.Packing == "" {
		if c.Batching == core.BatchModeSequential {
			c.Packing = core.PackOff
		} else {
			c.Packing = core.PackSlots
		}
	}
	if c.Pruning == "" {
		c.Pruning = core.PruneGrid
	}
	if c.PruneQuantum == 0 {
		c.PruneQuantum = core.DefaultPruneQuantum
	}
	if c.Parallel == 0 {
		c.Parallel = 1
	}
	return c
}

func (c Config) validate() error {
	if !(c.Eps > 0) {
		return fmt.Errorf("multiparty: Eps must be positive, got %v", c.Eps)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("multiparty: MinPts must be ≥ 1, got %d", c.MinPts)
	}
	if c.MaxCoord < 1 {
		return fmt.Errorf("multiparty: MaxCoord must be ≥ 1, got %d", c.MaxCoord)
	}
	if c.ShareMaskBits < 1 || c.ShareMaskBits > 50 {
		return fmt.Errorf("multiparty: ShareMaskBits %d outside [1,50]", c.ShareMaskBits)
	}
	if _, err := compare.ParseEngine(string(c.Engine)); err != nil {
		return err
	}
	if _, err := core.ParseBatchMode(string(c.Batching)); err != nil {
		return err
	}
	if _, err := core.ParsePruneMode(string(c.Pruning)); err != nil {
		return err
	}
	if _, err := core.ParsePackMode(string(c.Packing)); err != nil {
		return err
	}
	if c.Packing != core.PackOff && c.Batching != core.BatchModeBatched {
		return fmt.Errorf("multiparty: Packing %q requires Batching %q", c.Packing, core.BatchModeBatched)
	}
	if c.PruneQuantum < 1 {
		return fmt.Errorf("multiparty: PruneQuantum must be ≥ 1, got %d", c.PruneQuantum)
	}
	if c.Parallel < 1 || c.Parallel > transport.MaxMuxChannels {
		return fmt.Errorf("multiparty: Parallel %d outside [1,%d]", c.Parallel, transport.MaxMuxChannels)
	}
	if c.Parallel > 1 && c.Batching != core.BatchModeBatched {
		return fmt.Errorf("multiparty: Parallel %d requires Batching %q", c.Parallel, core.BatchModeBatched)
	}
	return nil
}

// Party describes one participant's position in the ring.
type Party struct {
	Index int // 0 is the coordinator
	K     int // total parties, ≥ 2
	// Prev receives from party (Index−1+K) mod K; Next sends to
	// (Index+1) mod K.
	Prev, Next transport.Conn
}

func (p Party) validate() error {
	if p.K < 2 {
		return fmt.Errorf("multiparty: need ≥ 2 parties, got %d", p.K)
	}
	if p.Index < 0 || p.Index >= p.K {
		return fmt.Errorf("multiparty: index %d outside [0,%d)", p.Index, p.K)
	}
	if p.Prev == nil || p.Next == nil {
		return fmt.Errorf("multiparty: party %d missing ring connections", p.Index)
	}
	return nil
}

// Result is each party's output.
type Result struct {
	Labels        []int
	NumClusters   int
	PairDecisions int // pairwise within-Eps bits revealed to all parties
	// CachedPairs counts the pair decisions a RingSession run answered
	// from its cross-run cache instead of circulating — zero for one-shot
	// runs and for a session's first run. Cached pairs still count in
	// PairDecisions (the decision-level budget), mirroring
	// core.Result.CachedComparisons.
	CachedPairs int
	// IndexCellCoords counts the per-record cell coordinates this party
	// received in the grid-pruning index circulations so far (0 with
	// pruning off) — the ring analogue of core.Ledger.IndexCellCoords.
	IndexCellCoords int
	// CiphertextsSent counts the Paillier ciphertexts this party put on
	// the wire during the run (ring circulation frames plus its side of
	// the masked comparison) — the quantity slot packing compresses.
	// YMPP RSA payloads are not counted. Always equal to
	// CiphertextsUplink + CiphertextsDownlink; retained as the
	// compatibility sum.
	CiphertextsSent int64
	// CiphertextsUplink is the request-leg share: ring accumulation
	// frames (operands travelling toward the coordinator's decryption)
	// plus the coordinator's comparison uplink — the leg "full" packing
	// exists to shrink.
	CiphertextsUplink int64
	// CiphertextsDownlink is the response-leg share: the last party's
	// masked comparison replies — the leg "slots" packing shrinks.
	CiphertextsDownlink int64
}

// ErrHandshake reports ring-wide parameter disagreement.
var ErrHandshake = errors.New("multiparty: handshake parameter mismatch")

// ringHandshakeVersion guards against protocol drift between binaries;
// version 2 added the Pruning parameters to the token; version 3 added
// the Parallel scheduler width (which also pins per-edge multiplexing);
// version 4 added the generation tombstone circulation (sliding
// windows); version 5 added the point tombstone circulation
// (point-level retraction); version 6 added the Packing
// plaintext-encoding parameter (slot-packed ring circulations);
// version 7 added the packed comparison uplink ("full" packing, a
// per-batch moded wire form) and the uplink/downlink ciphertext split.
const ringHandshakeVersion = 7

// handshakeToken travels once around the ring accumulating checks.
type handshakeToken struct {
	version  int
	epsSq    int64
	minPts   int
	maxCoord int64
	engine   string
	batching string
	packing  string
	pruning  string
	quantum  int
	parallel int
	count    int // record count, must be identical everywhere
	dimSum   int // Σ attribute counts
	k        int
	paiPub   []byte
	rsaN     []byte
	rsaE     []byte
}

func encodeToken(t handshakeToken) *transport.Builder {
	return transport.NewBuilder().
		PutUint(uint64(t.version)).
		PutInt(t.epsSq).
		PutUint(uint64(t.minPts)).
		PutInt(t.maxCoord).
		PutString(t.engine).
		PutString(t.batching).
		PutString(t.packing).
		PutString(t.pruning).
		PutUint(uint64(t.quantum)).
		PutUint(uint64(t.parallel)).
		PutUint(uint64(t.count)).
		PutUint(uint64(t.dimSum)).
		PutUint(uint64(t.k)).
		PutBytes(t.paiPub).
		PutBytes(t.rsaN).
		PutBytes(t.rsaE)
}

func decodeToken(r *transport.Reader) (handshakeToken, error) {
	t := handshakeToken{
		version:  int(r.Uint()),
		epsSq:    r.Int(),
		minPts:   int(r.Uint()),
		maxCoord: r.Int(),
		engine:   r.String(),
		batching: r.String(),
		packing:  r.String(),
		pruning:  r.String(),
		quantum:  int(r.Uint()),
		parallel: int(r.Uint()),
		count:    int(r.Uint()),
		dimSum:   int(r.Uint()),
		k:        int(r.Uint()),
	}
	t.paiPub = append([]byte{}, r.Bytes()...)
	t.rsaN = append([]byte{}, r.Bytes()...)
	t.rsaE = append([]byte{}, r.Bytes()...)
	return t, r.Err()
}

// Run executes the k-party vertical protocol for one party. attrs is this
// party's n × ownDim column slice. Every party must call Run concurrently
// with a consistent ring. This is the one-shot form — streaming arrival
// uses NewRingSession, whose Append absorbs new records and whose
// repeated Run calls reuse the cross-run pair cache.
func Run(party Party, cfg Config, attrs [][]float64) (*Result, error) {
	rs, err := NewRingSession(party, cfg, attrs)
	if err != nil {
		return nil, err
	}
	return rs.Run()
}

// newRingState performs the ring session establishment: validation,
// encoding, handshake, engines, and (under pruning) the initial cell
// circulation.
func newRingState(party Party, cfg Config, attrs [][]float64) (*state, [][]int64, error) {
	if err := party.validate(); err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if len(attrs) == 0 {
		return nil, nil, fmt.Errorf("multiparty: party %d holds no records", party.Index)
	}
	ownDim := len(attrs[0])
	for i, row := range attrs {
		if len(row) != ownDim {
			return nil, nil, fmt.Errorf("multiparty: record %d has %d attributes, want %d", i, len(row), ownDim)
		}
	}
	if ownDim < 1 {
		return nil, nil, fmt.Errorf("multiparty: party %d owns no attributes", party.Index)
	}

	codec, err := fixedpoint.New(cfg.Scale, cfg.Offset)
	if err != nil {
		return nil, nil, err
	}
	enc, err := codec.EncodePoints(attrs)
	if err != nil {
		return nil, nil, err
	}
	for i, row := range enc {
		for j, v := range row {
			if v > cfg.MaxCoord {
				return nil, nil, fmt.Errorf("multiparty: record %d attribute %d encodes to %d > MaxCoord %d", i, j, v, cfg.MaxCoord)
			}
		}
	}
	epsSq, err := codec.EpsSquared(cfg.Eps)
	if err != nil {
		return nil, nil, err
	}
	random := cfg.Random
	if random == nil {
		random = rand.Reader
	}

	if cfg.Parallel > 1 {
		random = transport.LockedReader(random)
	}
	st := &state{party: party, cfg: cfg, enc: enc, epsSq: epsSq, random: random, pool: cfg.Pool}
	st.prevs = edgeChannels(party.Prev, cfg.Parallel)
	st.nexts = edgeChannels(party.Next, cfg.Parallel)
	if err := st.handshake(); err != nil {
		return nil, nil, err
	}
	if err := st.buildEngines(); err != nil {
		return nil, nil, err
	}
	// Grid pruning: circulate the per-record cell matrix (each party's
	// own-column cells, tag ring.idx), then decide non-adjacent pairs out
	// of range locally on every party identically — those pairs never
	// circulate. Pruned pairs still count as pair decisions (the index
	// implies the bit), so PairDecisions is identical across modes.
	var cellRows [][]int64
	if st.pruneOn() {
		if cellRows, err = st.exchangeCells(); err != nil {
			return nil, nil, err
		}
	}
	return st, cellRows, nil
}

// pruneOn mirrors the two-party criterion: requested and geometrically
// useful.
func (st *state) pruneOn() bool {
	return st.cfg.Pruning == core.PruneGrid && st.epsSq < st.bound
}

// codec rebuilds the fixed-point codec of the session's configuration.
func (st *state) codec() (*fixedpoint.Codec, error) {
	return fixedpoint.New(st.cfg.Scale, st.cfg.Offset)
}

// state is one party's runtime for the ring protocol.
type state struct {
	party  Party
	cfg    Config
	enc    [][]int64
	epsSq  int64
	random io.Reader
	pool   *paillier.Pool

	// prevs/nexts are the per-worker ring edges: the bare connections for
	// W = 1, or the W channels of the multiplexed edges (prevs[0]/nexts[0]
	// carry the handshake and index circulation).
	prevs, nexts []transport.Conn

	m      int   // total (virtual) record dimension
	bound  int64 // m·MaxCoord²
	shareV int64

	// Coordinator-owned keys; every party holds the public halves.
	paiKey *paillier.PrivateKey // coordinator only
	rsaKey *yao.RSAKey          // coordinator only
	paiPub *paillier.PublicKey
	rsaPub *yao.RSAPublicKey

	cmpA compare.Alice // coordinator side
	cmpB compare.Bob   // last-party side

	// ringPack packs S masked sums per plaintext in the batched ring
	// circulation (nil with packing off): the coordinator packs its
	// partials with the bias, every other party folds its contribution in
	// bias-free (PackRaw), so each hop carries ⌈n/S⌉ ciphertexts and the
	// coordinator unpacks the biased sums once. All parties derive it from
	// the shared coordinator key and the handshake-agreed domain bound.
	ringPack  *encoding.Packer
	pairCount atomic.Int64 // within-Eps bits revealed (workers count concurrently)
	// ctsUp / ctsDown split this party's Paillier ciphertext account by
	// wire direction. Ring accumulation frames are operands travelling
	// toward the coordinator's decryption and the comparison that
	// follows, so every hop's contribution is request leg (uplink); the
	// comparison engines count their own traffic via their Sent hooks —
	// the coordinator's Alice uplink into ctsUp, the last party's Bob
	// replies into ctsDown — which matters under "full" packing, where
	// the uplink cost depends on the runtime batch content.
	ctsUp     atomic.Int64
	ctsDown   atomic.Int64
	idxCoords int // cell coordinates received in the index circulation
}

// packing reports whether any slot packing is on for this session.
func (st *state) packing() bool {
	return st.cfg.Packing == core.PackSlots || st.cfg.Packing == core.PackFull
}

// fullPacking reports whether the packed comparison uplink is on too.
func (st *state) fullPacking() bool { return st.cfg.Packing == core.PackFull }

// edgeChannels splits one ring edge into W worker channels (or returns
// the bare edge for W = 1).
func edgeChannels(conn transport.Conn, w int) []transport.Conn {
	if w <= 1 {
		return []transport.Conn{conn}
	}
	m := transport.NewMux(conn)
	out := make([]transport.Conn, w)
	for i := range out {
		out[i] = m.Channel(uint32(i))
	}
	return out
}

func (st *state) isCoordinator() bool { return st.party.Index == 0 }
func (st *state) isLast() bool        { return st.party.Index == st.party.K-1 }

// handshake passes a parameter token around the ring twice: first to
// verify agreement and accumulate the total dimension, then to broadcast
// the final dimension back out.
func (st *state) handshake() error {
	p := st.party
	prev, next := st.prevs[0], st.nexts[0]
	if st.isCoordinator() {
		var err error
		st.paiKey, err = paillier.GenerateKey(st.random, st.cfg.PaillierBits)
		if err != nil {
			return err
		}
		st.rsaKey, err = yao.GenerateRSAKey(st.random, st.cfg.RSABits)
		if err != nil {
			return err
		}
		st.paiPub = &st.paiKey.PublicKey
		st.rsaPub = &st.rsaKey.RSAPublicKey
		rsaN, rsaE := yao.MarshalRSAPublicKey(st.rsaPub)
		tok := handshakeToken{
			version:  ringHandshakeVersion,
			epsSq:    st.epsSq,
			minPts:   st.cfg.MinPts,
			maxCoord: st.cfg.MaxCoord,
			engine:   string(st.cfg.Engine),
			batching: string(st.cfg.Batching),
			packing:  string(st.cfg.Packing),
			pruning:  string(st.cfg.Pruning),
			quantum:  st.cfg.PruneQuantum,
			parallel: st.cfg.Parallel,
			count:    len(st.enc),
			dimSum:   len(st.enc[0]),
			k:        p.K,
			paiPub:   paillier.MarshalPublicKey(st.paiPub),
			rsaN:     rsaN,
			rsaE:     rsaE,
		}
		if err := transport.SendMsg(next, encodeToken(tok)); err != nil {
			return fmt.Errorf("multiparty: handshake send: %w", err)
		}
		r, err := transport.RecvMsg(prev)
		if err != nil {
			return fmt.Errorf("multiparty: handshake return: %w", err)
		}
		got, err := decodeToken(r)
		if err != nil {
			return err
		}
		// Second lap: broadcast the final total dimension.
		if err := transport.SendMsg(next, transport.NewBuilder().PutUint(uint64(got.dimSum))); err != nil {
			return err
		}
		if _, err := transport.RecvMsg(prev); err != nil {
			return err
		}
		return st.finishDims(got.dimSum)
	}

	// Non-coordinator: verify, accumulate own dimension, forward.
	r, err := transport.RecvMsg(prev)
	if err != nil {
		return fmt.Errorf("multiparty: handshake recv: %w", err)
	}
	tok, err := decodeToken(r)
	if err != nil {
		return err
	}
	switch {
	case tok.version != ringHandshakeVersion:
		return fmt.Errorf("%w: version %d vs %d", ErrHandshake, ringHandshakeVersion, tok.version)
	case tok.epsSq != st.epsSq:
		return fmt.Errorf("%w: Eps² %d vs %d", ErrHandshake, st.epsSq, tok.epsSq)
	case tok.minPts != st.cfg.MinPts:
		return fmt.Errorf("%w: MinPts %d vs %d", ErrHandshake, st.cfg.MinPts, tok.minPts)
	case tok.maxCoord != st.cfg.MaxCoord:
		return fmt.Errorf("%w: MaxCoord %d vs %d", ErrHandshake, st.cfg.MaxCoord, tok.maxCoord)
	case tok.engine != string(st.cfg.Engine):
		return fmt.Errorf("%w: engine %q vs %q", ErrHandshake, st.cfg.Engine, tok.engine)
	case tok.batching != string(st.cfg.Batching):
		return fmt.Errorf("%w: batching %q vs %q", ErrHandshake, st.cfg.Batching, tok.batching)
	case tok.packing != string(st.cfg.Packing):
		return fmt.Errorf("%w: packing %q vs %q", ErrHandshake, st.cfg.Packing, tok.packing)
	case tok.pruning != string(st.cfg.Pruning):
		return fmt.Errorf("%w: pruning %q vs %q", ErrHandshake, st.cfg.Pruning, tok.pruning)
	case tok.quantum != st.cfg.PruneQuantum:
		return fmt.Errorf("%w: prune quantum %d vs %d", ErrHandshake, st.cfg.PruneQuantum, tok.quantum)
	case tok.parallel != st.cfg.Parallel:
		return fmt.Errorf("%w: parallel width %d vs %d", ErrHandshake, st.cfg.Parallel, tok.parallel)
	case tok.count != len(st.enc):
		return fmt.Errorf("%w: record count %d vs %d", ErrHandshake, len(st.enc), tok.count)
	case tok.k != st.party.K:
		return fmt.Errorf("%w: ring size %d vs %d", ErrHandshake, st.party.K, tok.k)
	}
	st.paiPub, err = paillier.UnmarshalPublicKey(tok.paiPub)
	if err != nil {
		return err
	}
	st.rsaPub, err = yao.UnmarshalRSAPublicKey(tok.rsaN, tok.rsaE)
	if err != nil {
		return err
	}
	tok.dimSum += len(st.enc[0])
	if err := transport.SendMsg(next, encodeToken(tok)); err != nil {
		return err
	}
	// Second lap: learn the total dimension, forward it.
	r2, err := transport.RecvMsg(prev)
	if err != nil {
		return err
	}
	m := int(r2.Uint())
	if r2.Err() != nil {
		return r2.Err()
	}
	if err := transport.SendMsg(next, transport.NewBuilder().PutUint(uint64(m))); err != nil {
		return err
	}
	return st.finishDims(m)
}

func (st *state) finishDims(m int) error {
	if m < 1 {
		return fmt.Errorf("multiparty: total dimension %d < 1", m)
	}
	st.m = m
	st.bound = int64(m) * st.cfg.MaxCoord * st.cfg.MaxCoord
	if st.bound <= 0 || st.bound > int64(1)<<50 {
		return fmt.Errorf("multiparty: dist² bound %d out of range", st.bound)
	}
	if st.epsSq > st.bound {
		st.epsSq = st.bound
	}
	st.shareV = int64(1) << uint(st.cfg.ShareMaskBits)
	return nil
}

// exchangeCells circulates the grid-pruning index around the ring: lap 1
// accumulates each party's own-column cell coordinates per record (in
// party order, matching the virtual column order), lap 2 broadcasts the
// completed matrix, so every party prunes over identical cell rows.
func (st *state) exchangeCells() ([][]int64, error) {
	w := spatial.CellWidth(st.epsSq)
	own := make([][]int64, len(st.enc))
	for i, row := range st.enc {
		own[i] = spatial.Bucket(row, w)
	}
	return st.circulateCells(own)
}

// circulateCells runs the two-lap cell circulation over one batch of
// rows (the whole dataset at establishment; just the appended rows for a
// streaming delta). Row-count validation doubles as the ring-wide
// agreement check that every party appended the same records.
func (st *state) circulateCells(own [][]int64) ([][]int64, error) {
	prev, next := st.prevs[0], st.nexts[0]
	nRows := len(own)
	encode := func(rows [][]int64) *transport.Builder {
		return spatial.EncodeCells(transport.NewBuilder(), rows)
	}
	decode := func(r *transport.Reader, dim int) ([][]int64, error) {
		rows, err := spatial.DecodeCells(r, dim)
		if err != nil {
			return nil, fmt.Errorf("multiparty: ring index: %w", err)
		}
		if len(rows) != nRows {
			return nil, fmt.Errorf("multiparty: ring index has %d rows, want %d", len(rows), nRows)
		}
		for i, row := range rows {
			if len(row) != len(rows[0]) {
				return nil, fmt.Errorf("multiparty: ring index row %d has %d cells, want %d", i, len(row), len(rows[0]))
			}
		}
		return rows, nil
	}
	m := st.m
	ownDim := len(st.enc[0])

	var full [][]int64
	if nRows == 0 {
		return nil, nil
	}
	if st.isCoordinator() {
		if err := transport.SendMsg(next, encode(own)); err != nil {
			return nil, fmt.Errorf("multiparty: ring index send: %w", err)
		}
		r, err := transport.RecvMsg(prev)
		if err != nil {
			return nil, fmt.Errorf("multiparty: ring index return: %w", err)
		}
		if full, err = decode(r, m); err != nil {
			return nil, err
		}
		// Lap 2: broadcast the completed matrix.
		if err := transport.SendMsg(next, encode(full)); err != nil {
			return nil, err
		}
		if _, err := transport.RecvMsg(prev); err != nil {
			return nil, err
		}
	} else {
		r, err := transport.RecvMsg(prev)
		if err != nil {
			return nil, fmt.Errorf("multiparty: ring index recv: %w", err)
		}
		soFar, err := decode(r, -1)
		if err != nil {
			return nil, err
		}
		appended := make([][]int64, nRows)
		for i := 0; i < nRows; i++ {
			appended[i] = append(append([]int64{}, soFar[i]...), own[i]...)
		}
		if err := transport.SendMsg(next, encode(appended)); err != nil {
			return nil, err
		}
		// Lap 2: learn the full matrix, forward it.
		r2, err := transport.RecvMsg(prev)
		if err != nil {
			return nil, err
		}
		if full, err = decode(r2, m); err != nil {
			return nil, err
		}
		if err := transport.SendMsg(next, encode(full)); err != nil {
			return nil, err
		}
	}
	st.idxCoords += nRows * (m - ownDim)
	return full, nil
}

// buildEngines constructs the coordinator↔last comparison pair over the
// masked-sum domain [0, bound + V).
func (st *state) buildEngines() error {
	bound := st.bound + st.shareV
	switch st.cfg.Engine {
	case compare.EngineYMPP:
		if bound+2 > yao.MaxDomain {
			return fmt.Errorf("multiparty: comparison domain %d exceeds YMPP limit; use Engine=masked", bound+2)
		}
		if st.isCoordinator() {
			st.cmpA = &compare.YMPPAlice{Key: st.rsaKey, Max: bound, Random: st.random, Pool: st.pool}
		}
		if st.isLast() {
			st.cmpB = &compare.YMPPBob{Pub: st.rsaPub, Max: bound, Random: st.random}
		}
	case compare.EngineMasked:
		limit := new(big.Int).Lsh(big.NewInt(bound+2), uint(st.cfg.CmpMaskBits))
		if limit.Cmp(st.paiPub.PlaintextBound()) >= 0 {
			return fmt.Errorf("multiparty: bound %d with %d mask bits overflows the Paillier plaintext space", bound, st.cfg.CmpMaskBits)
		}
		// Both comparison roles live on the coordinator's key, so both
		// endpoints derive the same reply packer (and, under "full"
		// packing, the same widened uplink packer).
		var cp, up *encoding.Packer
		if st.packing() {
			var err error
			if cp, err = encoding.NewComparePacker(st.paiPub.PlaintextBound(), bound, st.cfg.CmpMaskBits); err != nil {
				return fmt.Errorf("multiparty: comparison packer: %w", err)
			}
			if st.fullPacking() {
				if up, err = encoding.NewUplinkComparePacker(st.paiPub.PlaintextBound(), bound, st.cfg.CmpMaskBits); err != nil {
					return fmt.Errorf("multiparty: uplink packer: %w", err)
				}
			}
		}
		if st.isCoordinator() {
			st.cmpA = &compare.MaskedAlice{Key: st.paiKey, Max: bound, Random: st.random, Pool: st.pool, Packer: cp, UplinkPacker: up, Sent: &st.ctsUp}
		}
		if st.isLast() {
			st.cmpB = &compare.MaskedBob{Pub: st.paiPub, Max: bound, MaskBits: st.cfg.CmpMaskBits, Random: st.random, Pool: st.pool, Packer: cp, UplinkPacker: up, Sent: &st.ctsDown}
		}
	default:
		return fmt.Errorf("multiparty: unknown engine %q", st.cfg.Engine)
	}
	if st.packing() {
		// The ring accumulation packs under the coordinator's key; every
		// slot's final value is one masked sum in [0, bound + V).
		rp, err := encoding.NewSumPacker(st.paiPub.PlaintextBound(), bound)
		if err != nil {
			return fmt.Errorf("multiparty: ring packer: %w", err)
		}
		st.ringPack = rp
	}
	return nil
}

// partial computes this party's local sum of squared attribute
// differences for records i and j.
func (st *state) partial(i, j int) int64 {
	var s int64
	for k := range st.enc[i] {
		d := st.enc[i][k] - st.enc[j][k]
		s += d * d
	}
	return s
}

// pairLE is the joint within-Eps oracle: ring accumulation, masked
// decryption, coordinator↔last comparison, ring broadcast.
func (st *state) pairLE(i, j int) (bool, error) {
	st.pairCount.Add(1)
	prev, next := st.prevs[0], st.nexts[0]
	s := st.partial(i, j)

	if st.isCoordinator() {
		ct, err := st.paiPub.Encrypt(st.random, big.NewInt(s))
		if err != nil {
			return false, err
		}
		st.ctsUp.Add(1)
		if err := transport.SendMsg(next, transport.NewBuilder().PutBig(ct)); err != nil {
			return false, fmt.Errorf("multiparty: ring send: %w", err)
		}
		r, err := transport.RecvMsg(prev)
		if err != nil {
			return false, fmt.Errorf("multiparty: ring return: %w", err)
		}
		acc := r.Big()
		if r.Err() != nil {
			return false, r.Err()
		}
		t, err := st.paiKey.DecryptSigned(acc)
		if err != nil {
			return false, err
		}
		if t.Sign() < 0 || t.Int64() >= st.bound+st.shareV {
			return false, fmt.Errorf("multiparty: masked sum %v outside [0,%d)", t, st.bound+st.shareV)
		}
		// t = dist² + v ≤ Eps² + v ⟺ dist² ≤ Eps².
		in, err := st.cmpA.LessEq(prev, t.Int64())
		if err != nil {
			return false, err
		}
		// Broadcast the decision around the ring.
		if err := transport.SendMsg(next, transport.NewBuilder().PutBool(in)); err != nil {
			return false, err
		}
		return in, nil
	}

	// Non-coordinator: accumulate and forward.
	r, err := transport.RecvMsg(prev)
	if err != nil {
		return false, fmt.Errorf("multiparty: ring recv: %w", err)
	}
	acc := r.Big()
	if r.Err() != nil {
		return false, r.Err()
	}
	add := s
	var v int64
	if st.isLast() {
		mask, err := rand.Int(st.random, big.NewInt(st.shareV))
		if err != nil {
			return false, err
		}
		v = mask.Int64()
		add += v
	}
	term, err := st.paiPub.Encrypt(st.random, big.NewInt(add))
	if err != nil {
		return false, err
	}
	acc, err = st.paiPub.Add(acc, term)
	if err != nil {
		return false, err
	}
	st.ctsUp.Add(1)
	if err := transport.SendMsg(next, transport.NewBuilder().PutBig(acc)); err != nil {
		return false, fmt.Errorf("multiparty: ring forward: %w", err)
	}
	if st.isLast() {
		// Participate in the comparison with right side Eps² + v.
		if _, err := st.cmpB.LessEq(next, st.epsSq+v); err != nil {
			return false, err
		}
	}
	// Receive the broadcast decision; forward unless the next hop is the
	// coordinator (who originated it).
	br, err := transport.RecvMsg(prev)
	if err != nil {
		return false, fmt.Errorf("multiparty: broadcast recv: %w", err)
	}
	in := br.Bool()
	if br.Err() != nil {
		return false, br.Err()
	}
	if !st.isLast() {
		if err := transport.SendMsg(next, transport.NewBuilder().PutBool(in)); err != nil {
			return false, err
		}
	}
	return in, nil
}

// pairLEBatchOn is the batched ring oracle on worker channel ch: one
// circulation accumulates the ciphertexts of every pair in the batch
// (encrypted, added, and decrypted on the parallel Paillier pool), one
// BatchLessEq settles all thresholds between coordinator and last party,
// and one circulation broadcasts the result bits. Message cost per
// neighborhood: ~2k ring frames + 3 comparison frames, versus the
// sequential path's per-pair circulations. Under the parallel scheduler
// (Config.Parallel) up to W such circulations — one per worker channel —
// ride the multiplexed ring edges concurrently.
func (st *state) pairLEBatchOn(ch int, pairs [][2]int) ([]bool, error) {
	st.pairCount.Add(int64(len(pairs)))
	prev, next := st.prevs[ch], st.nexts[ch]
	partials := make([]int64, len(pairs))
	for t, pr := range pairs {
		partials[t] = st.partial(pr[0], pr[1])
	}

	if st.isCoordinator() {
		var cts []*big.Int
		var err error
		if pk := st.ringPack; pk != nil {
			// Pack S partials per plaintext; the bias enters here, exactly
			// once, and every later hop contributes bias-free.
			packed := make([]*big.Int, pk.Groups(len(partials)))
			for g := range packed {
				lo := g * pk.Slots()
				if packed[g], err = pk.PackInt64(partials[lo : lo+pk.GroupLen(len(partials), g)]); err != nil {
					return nil, err
				}
			}
			cts, err = st.paiPub.EncryptBatch(st.pool, st.random, packed)
		} else {
			cts, err = st.paiPub.EncryptInt64Batch(st.pool, st.random, partials)
		}
		if err != nil {
			return nil, err
		}
		st.ctsUp.Add(int64(len(cts)))
		if err := transport.SendMsg(next, transport.NewBuilder().PutBigs(cts)); err != nil {
			return nil, fmt.Errorf("multiparty: ring batch send: %w", err)
		}
		r, err := transport.RecvMsg(prev)
		if err != nil {
			return nil, fmt.Errorf("multiparty: ring batch return: %w", err)
		}
		accs := r.Bigs()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(accs) != len(cts) {
			return nil, fmt.Errorf("multiparty: ring returned %d ciphertexts, want %d", len(accs), len(cts))
		}
		var vals []int64
		if pk := st.ringPack; pk != nil {
			plains, err := st.paiKey.DecryptBatch(st.pool, accs)
			if err != nil {
				return nil, err
			}
			vals = make([]int64, 0, len(pairs))
			for g, pt := range plains {
				sv, err := pk.UnpackInt64(pt, pk.GroupLen(len(pairs), g))
				if err != nil {
					return nil, fmt.Errorf("multiparty: ring unpack: %w", err)
				}
				vals = append(vals, sv...)
			}
		} else {
			ts, err := st.paiKey.DecryptSignedBatch(st.pool, accs)
			if err != nil {
				return nil, err
			}
			vals = make([]int64, len(ts))
			for t, ti := range ts {
				if ti.Sign() < 0 || ti.Int64() >= st.bound+st.shareV {
					return nil, fmt.Errorf("multiparty: masked sum %v outside [0,%d)", ti, st.bound+st.shareV)
				}
				vals[t] = ti.Int64()
			}
		}
		for _, v := range vals {
			// v = dist² + mask ≤ Eps² + mask ⟺ dist² ≤ Eps².
			if v < 0 || v >= st.bound+st.shareV {
				return nil, fmt.Errorf("multiparty: masked sum %d outside [0,%d)", v, st.bound+st.shareV)
			}
		}
		ins, err := st.cmpA.BatchLessEq(prev, vals)
		if err != nil {
			return nil, err
		}
		// Broadcast the decisions around the ring.
		if err := transport.SendMsg(next, transport.NewBuilder().PutBools(ins)); err != nil {
			return nil, err
		}
		return ins, nil
	}

	// Non-coordinator: accumulate the whole batch and forward.
	r, err := transport.RecvMsg(prev)
	if err != nil {
		return nil, fmt.Errorf("multiparty: ring batch recv: %w", err)
	}
	accs := r.Bigs()
	if r.Err() != nil {
		return nil, r.Err()
	}
	wantCts := len(pairs)
	if st.ringPack != nil {
		wantCts = st.ringPack.Groups(len(pairs))
	}
	if len(accs) != wantCts {
		return nil, fmt.Errorf("multiparty: ring carried %d ciphertexts for %d pairs", len(accs), len(pairs))
	}
	adds := partials
	masks := make([]int64, len(pairs))
	if st.isLast() {
		for t := range adds {
			mask, err := rand.Int(st.random, big.NewInt(st.shareV))
			if err != nil {
				return nil, err
			}
			masks[t] = mask.Int64()
			adds[t] += masks[t]
		}
	}
	var terms []*big.Int
	if pk := st.ringPack; pk != nil {
		// Mid-ring contribution: bias-free packing (the coordinator already
		// supplied the one bias per slot).
		packed := make([]*big.Int, pk.Groups(len(adds)))
		for g := range packed {
			lo := g * pk.Slots()
			raw := make([]*big.Int, pk.GroupLen(len(adds), g))
			for s := range raw {
				raw[s] = big.NewInt(adds[lo+s])
			}
			if packed[g], err = pk.PackRaw(raw); err != nil {
				return nil, err
			}
		}
		terms, err = st.paiPub.EncryptBatch(st.pool, st.random, packed)
	} else {
		terms, err = st.paiPub.EncryptInt64Batch(st.pool, st.random, adds)
	}
	if err != nil {
		return nil, err
	}
	if err := paillier.ParallelFor(st.pool, len(accs), func(t int) error {
		acc, err := st.paiPub.Add(accs[t], terms[t])
		if err != nil {
			return err
		}
		accs[t] = acc
		return nil
	}); err != nil {
		return nil, err
	}
	st.ctsUp.Add(int64(len(accs)))
	if err := transport.SendMsg(next, transport.NewBuilder().PutBigs(accs)); err != nil {
		return nil, fmt.Errorf("multiparty: ring batch forward: %w", err)
	}
	if st.isLast() {
		// Participate in the comparison with right sides Eps² + v_t.
		rights := make([]int64, len(pairs))
		for t := range rights {
			rights[t] = st.epsSq + masks[t]
		}
		if _, err := st.cmpB.BatchLessEq(next, rights); err != nil {
			return nil, err
		}
	}
	// Receive the broadcast decisions; forward unless the next hop is the
	// coordinator (who originated them).
	br, err := transport.RecvMsg(prev)
	if err != nil {
		return nil, fmt.Errorf("multiparty: batch broadcast recv: %w", err)
	}
	ins := br.Bools()
	if br.Err() != nil {
		return nil, br.Err()
	}
	if len(ins) != len(pairs) {
		return nil, fmt.Errorf("multiparty: broadcast carried %d bits for %d pairs", len(ins), len(pairs))
	}
	if !st.isLast() {
		if err := transport.SendMsg(next, transport.NewBuilder().PutBools(ins)); err != nil {
			return nil, err
		}
	}
	return ins, nil
}

// NewLocalRing builds an in-process ring of k parties for tests, examples,
// and benchmarks.
func NewLocalRing(k int) []Party {
	// edge[i] connects party i (as Next) to party i+1 mod k (as Prev).
	type edge struct{ a, b transport.Conn }
	edges := make([]edge, k)
	for i := range edges {
		a, b := transport.Pipe()
		edges[i] = edge{a, b}
	}
	parties := make([]Party, k)
	for i := range parties {
		parties[i] = Party{
			Index: i,
			K:     k,
			Next:  edges[i].a,
			Prev:  edges[(i-1+k)%k].b,
		}
	}
	return parties
}
