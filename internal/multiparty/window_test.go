package multiparty

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/metrics"
)

// The multiparty windowed-equivalence harness: a ring (or mesh) session
// sliding a fixed-width window — append one generation, expire the
// oldest, run — must produce labels and decision-level disclosure counts
// identical to a one-shot run over exactly the window contents, on every
// party, while the caches that survive the expiry keep contributing.

// ringWindowWidth is the live window width of the ring/mesh cases.
const ringWindowWidth = 2

// ringWindowGens is the shared record stream, one batch per generation
// (3-D records so a 3-party ring owns one column each).
var ringWindowGens = [][][]float64{
	{{1, 1, 1}, {2, 1, 1}, {9, 9, 9}, {9, 8, 9}},
	{{1, 2, 1}, {8, 9, 8}, {5, 5, 5}},
	{{2, 2, 2}, {9, 9, 8}, {8, 8, 6}},
	{{2, 2, 1}, {8, 8, 9}, {1, 1, 2}},
}

func ringWindowConcat(lo, hi int) [][]float64 {
	var out [][]float64
	for g := lo; g < hi; g++ {
		out = append(out, ringWindowGens[g]...)
	}
	return out
}

// runRingWindowed drives k concurrent RingSessions through a sliding
// window: fill (construct + append), run, then append+expire+run per
// slide.
func runRingWindowed(t *testing.T, cfg Config, k int) [][]*Result {
	t.Helper()
	parties := NewLocalRing(k)
	out := make([][]*Result, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer parties[p].Next.Close()
			defer parties[p].Prev.Close()
			rs, err := NewRingSession(parties[p], cfg, splitColumns(ringWindowGens[0], k)[p])
			if err != nil {
				errs[p] = err
				return
			}
			step := func(gen int, expire bool) error {
				if err := rs.Append(splitColumns(ringWindowGens[gen], k)[p]); err != nil {
					return err
				}
				if expire {
					if err := rs.Expire(1); err != nil {
						return err
					}
				}
				res, err := rs.Run()
				if err != nil {
					return err
				}
				out[p] = append(out[p], res)
				return nil
			}
			if errs[p] = step(1, false); errs[p] != nil {
				return
			}
			for gen := ringWindowWidth; gen < len(ringWindowGens); gen++ {
				if errs[p] = step(gen, true); errs[p] != nil {
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func testRingWindowed(t *testing.T, cfg Config) {
	t.Helper()
	const k = 3
	inc := runRingWindowed(t, cfg, k)
	stages := len(ringWindowGens) - ringWindowWidth + 1
	for stage := 0; stage < stages; stage++ {
		fresh, err := runRing(t, cfg, splitColumns(ringWindowConcat(stage, stage+ringWindowWidth), k))
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < k; p++ {
			got := inc[p][stage]
			if !metrics.ExactMatch(got.Labels, fresh[p].Labels) {
				t.Errorf("stage %d party %d: labels %v, fresh ring %v", stage, p, got.Labels, fresh[p].Labels)
			}
			if got.PairDecisions != fresh[p].PairDecisions {
				t.Errorf("stage %d party %d: %d pair decisions, fresh ring %d", stage, p, got.PairDecisions, fresh[p].PairDecisions)
			}
			if stage > 0 && got.CachedPairs == 0 {
				t.Errorf("stage %d party %d: cache never hit across the expiry", stage, p)
			}
		}
	}
}

func TestRingWindowedEquivalence(t *testing.T) {
	testRingWindowed(t, testCfg(compare.EngineMasked))
}

func TestRingWindowedEquivalenceParallel(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	cfg.Parallel = 4
	testRingWindowed(t, cfg)
}

func TestRingWindowedEquivalencePruningOff(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	cfg.Pruning = core.PruneOff
	testRingWindowed(t, cfg)
}

// Ring expiry misuse: bad arguments fail locally on every party without
// touching the wire; mismatched arguments across parties fail loudly in
// the tombstone circulation instead of silently diverging.
func TestRingExpireMisuse(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	const k = 3
	parties := NewLocalRing(k)
	errs := make([]error, k)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer parties[p].Next.Close()
			defer parties[p].Prev.Close()
			rs, err := NewRingSession(parties[p], cfg, splitColumns(ringWindowGens[0], k)[p])
			if err != nil {
				errs[p] = err
				return
			}
			// Local validation: no wire traffic, so one party's rejection
			// cannot wedge the others.
			if err := rs.Expire(0); err == nil {
				mu.Lock()
				errs[p] = errExpected("Expire(0) accepted")
				mu.Unlock()
				return
			}
			if err := rs.Expire(2); err == nil {
				mu.Lock()
				errs[p] = errExpected("Expire beyond the live window accepted")
				mu.Unlock()
				return
			}
			if err := rs.Append(splitColumns(ringWindowGens[1], k)[p]); err != nil {
				errs[p] = err
				return
			}
			// Mismatched arguments: party 2 tries to expire both live
			// generations while the rest expire one. Every party must fail.
			gens := 1
			if p == 2 {
				gens = 2
			}
			if err := rs.Expire(gens); err == nil {
				mu.Lock()
				errs[p] = errExpected("mismatched Expire succeeded")
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Errorf("party %d: %v", p, err)
		}
	}
}

type errExpected string

func (e errExpected) Error() string { return string(e) }

// Mesh: every party holds complete records; one batch per party per
// generation.
var meshWindowGens = [][][][]float64{ // [gen][party]
	{{{1, 1}, {2, 1}}, {{1, 2}, {9, 8}}, {{2, 2}, {8, 9}}},
	{{{9, 9}}, {{5, 5}}, {{12, 2}}},
	{{{2, 3}}, {{8, 8}}, {{9, 7}}},
	{{{3, 2}}, {{7, 9}}, {{1, 3}}},
}

func meshWindowConcat(party, lo, hi int) [][]float64 {
	var out [][]float64
	for g := lo; g < hi; g++ {
		out = append(out, meshWindowGens[g][party]...)
	}
	return out
}

// runMeshWindowOnce runs the one-shot mesh protocol over one window.
func runMeshWindowOnce(t *testing.T, cfg Config, lo, hi int) []*HorizontalResult {
	t.Helper()
	const k = 3
	mesh := NewLocalMesh(k)
	out := make([]*HorizontalResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			out[p], errs[p] = RunHorizontal(
				HorizontalParty{Index: p, K: k, Conns: mesh[p]}, cfg, meshWindowConcat(p, lo, hi))
			for q, c := range mesh[p] {
				if q != p {
					c.Close()
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func testMeshWindowed(t *testing.T, cfg Config) {
	t.Helper()
	const k = 3
	mesh := NewLocalMesh(k)
	inc := make([][]*HorizontalResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				for q, c := range mesh[p] {
					if q != p {
						c.Close()
					}
				}
			}()
			ms, err := NewMeshSession(HorizontalParty{Index: p, K: k, Conns: mesh[p]}, cfg, meshWindowGens[0][p])
			if err != nil {
				errs[p] = err
				return
			}
			step := func(gen int, expire bool) error {
				if err := ms.Append(meshWindowGens[gen][p]); err != nil {
					return err
				}
				if expire {
					if err := ms.Expire(1); err != nil {
						return err
					}
				}
				res, err := ms.Run()
				if err != nil {
					return err
				}
				inc[p] = append(inc[p], res)
				return nil
			}
			if errs[p] = step(1, false); errs[p] != nil {
				return
			}
			for gen := ringWindowWidth; gen < len(meshWindowGens); gen++ {
				if errs[p] = step(gen, true); errs[p] != nil {
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	stages := len(meshWindowGens) - ringWindowWidth + 1
	for stage := 0; stage < stages; stage++ {
		fresh := runMeshWindowOnce(t, cfg, stage, stage+ringWindowWidth)
		for p := 0; p < k; p++ {
			got := inc[p][stage]
			if !metrics.ExactMatch(got.Labels, fresh[p].Labels) {
				t.Errorf("stage %d party %d: labels %v, fresh mesh %v", stage, p, got.Labels, fresh[p].Labels)
			}
			if got.RegionQueries != fresh[p].RegionQueries {
				t.Errorf("stage %d party %d: %d region queries, fresh mesh %d", stage, p, got.RegionQueries, fresh[p].RegionQueries)
			}
			if stage > 0 && got.CachedCounts == 0 {
				t.Errorf("stage %d party %d: cache never hit across the expiry", stage, p)
			}
		}
	}
}

func TestMeshWindowedEquivalence(t *testing.T) {
	testMeshWindowed(t, testCfg(compare.EngineMasked))
}

func TestMeshWindowedEquivalenceParallel(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	cfg.Parallel = 4
	testMeshWindowed(t, cfg)
}

// Mesh expiry misuse: mismatched arguments fail on every edge with the
// disagreement spelled out.
func TestMeshExpireMismatch(t *testing.T) {
	cfg := testCfg(compare.EngineMasked)
	const k = 2
	mesh := NewLocalMesh(k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				for q, c := range mesh[p] {
					if q != p {
						c.Close()
					}
				}
			}()
			ms, err := NewMeshSession(HorizontalParty{Index: p, K: k, Conns: mesh[p]}, cfg, meshWindowGens[0][p])
			if err != nil {
				errs[p] = err
				return
			}
			if err := ms.Expire(0); err == nil {
				errs[p] = errExpected("Expire(0) accepted")
				return
			}
			if err := ms.Append(meshWindowGens[1][p]); err != nil {
				errs[p] = err
				return
			}
			err = ms.Expire(1 + p) // party 1 disagrees
			if err == nil {
				errs[p] = errExpected("mismatched Expire succeeded")
				return
			}
			if !strings.Contains(err.Error(), "expire") {
				errs[p] = err
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Errorf("party %d: %v", p, err)
		}
	}
}
