package multiparty

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	mrand "math/rand"
	"sync"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/dbscan"
	"repro/internal/fixedpoint"
	"repro/internal/mpc"
	"repro/internal/paillier"
	"repro/internal/spatial"
	"repro/internal/transport"
	"repro/internal/yao"
)

// The k-party horizontal extension generalizes Algorithm 3/4: every party
// holds complete records and runs its own driving pass in index order;
// during party p's pass each other party answers HDP region queries, so a
// query point's density count is |own neighbours| + Σ_q |peer q's
// neighbours|. As in the two-party protocol, expansion walks only the
// driver's own points and cluster ids are local to each party.
//
// Disclosure note (DESIGN.md): pairwise composition reveals per-peer
// neighbour counts to the driver (finer-grained than the two-party
// protocol's single count), plus the HDP dot products to each responder —
// the natural cost of composing the paper's two-party building block.

// HorizontalParty describes one participant in the k-party horizontal
// protocol, connected to every other party.
type HorizontalParty struct {
	Index int
	K     int
	// Conns[q] connects to party q; Conns[Index] is unused (may be nil).
	Conns []transport.Conn
}

func (p HorizontalParty) validate() error {
	if p.K < 2 {
		return fmt.Errorf("multiparty: need ≥ 2 parties, got %d", p.K)
	}
	if p.Index < 0 || p.Index >= p.K {
		return fmt.Errorf("multiparty: index %d outside [0,%d)", p.Index, p.K)
	}
	if len(p.Conns) != p.K {
		return fmt.Errorf("multiparty: party %d has %d connections, want %d", p.Index, len(p.Conns), p.K)
	}
	for q, c := range p.Conns {
		if q != p.Index && c == nil {
			return fmt.Errorf("multiparty: party %d missing connection to %d", p.Index, q)
		}
	}
	return nil
}

// HorizontalResult is one party's output: labels for its own points.
type HorizontalResult struct {
	Labels      []int
	NumClusters int
	// RegionQueries counts the driving-side region queries this party
	// issued (each reveals k−1 per-peer neighbour counts to it).
	RegionQueries int
}

// pairSession holds the cryptographic state shared with one specific peer.
type pairSession struct {
	paiKey  *paillier.PrivateKey
	rsaKey  *yao.RSAKey
	peerPai *paillier.PublicKey
	peerRSA *yao.RSAPublicKey
	cmpA    compare.Alice // we drive: we hold the left value
	cmpB    compare.Bob   // we respond: peer holds the left value
	peerN   int           // peer's record count
	rng     *mrand.Rand   // per-query permutation when we respond
	peerDir spatial.Directory
}

// RunHorizontal executes the k-party horizontal protocol for one party.
// All parties must call it concurrently over a consistent mesh.
func RunHorizontal(party HorizontalParty, cfg Config, points [][]float64) (*HorizontalResult, error) {
	if err := party.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("multiparty: party %d holds no points", party.Index)
	}
	m := len(points[0])
	for i, row := range points {
		if len(row) != m {
			return nil, fmt.Errorf("multiparty: point %d has %d attributes, want %d", i, len(row), m)
		}
	}
	codec, err := fixedpoint.New(cfg.Scale, cfg.Offset)
	if err != nil {
		return nil, err
	}
	enc, err := codec.EncodePoints(points)
	if err != nil {
		return nil, err
	}
	for i, row := range enc {
		for j, v := range row {
			if v > cfg.MaxCoord {
				return nil, fmt.Errorf("multiparty: point %d attribute %d encodes to %d > MaxCoord %d", i, j, v, cfg.MaxCoord)
			}
		}
	}
	epsSq, err := codec.EpsSquared(cfg.Eps)
	if err != nil {
		return nil, err
	}
	random := cfg.Random
	if random == nil {
		random = rand.Reader
	}
	if cfg.Parallel > 1 {
		// The driving pass queries all peers concurrently; the configured
		// reader is not assumed goroutine-safe.
		random = transport.LockedReader(random)
	}

	h := &hState{
		party: party, cfg: cfg, enc: enc, epsSq: epsSq, random: random,
		bound: int64(m) * cfg.MaxCoord * cfg.MaxCoord,
		m:     m,
	}
	if h.bound <= 0 || h.bound > int64(1)<<50 {
		return nil, fmt.Errorf("multiparty: dist² bound %d out of range", h.bound)
	}
	if h.epsSq > h.bound {
		h.epsSq = h.bound
	}
	// Grid pruning engages as in the two-party protocol: config-requested
	// and geometrically useful (see core/session).
	h.pruneOn = cfg.Pruning == core.PruneGrid && h.epsSq < h.bound
	if h.pruneOn {
		h.cellW = spatial.CellWidth(h.epsSq)
		grid, err := spatial.NewGrid(enc, h.cellW)
		if err != nil {
			return nil, err
		}
		h.ownGrid = grid
		h.ownDir = grid.Directory(cfg.PruneQuantum)
	}
	if err := h.handshakeAll(); err != nil {
		return nil, err
	}

	// Passes in party-index order; everyone agrees on the schedule.
	var labels []int
	var clusters int
	for pass := 0; pass < party.K; pass++ {
		if pass == party.Index {
			labels, clusters, err = h.drive()
		} else {
			err = h.respond(pass)
		}
		if err != nil {
			return nil, fmt.Errorf("multiparty: pass %d: %w", pass, err)
		}
	}
	return &HorizontalResult{Labels: labels, NumClusters: clusters, RegionQueries: h.queries}, nil
}

// hState is one party's runtime for the k-party horizontal protocol.
type hState struct {
	party  HorizontalParty
	cfg    Config
	enc    [][]int64
	epsSq  int64
	bound  int64
	m      int
	random io.Reader

	sessions []*pairSession // indexed by peer
	queries  int

	pruneOn bool
	cellW   int64
	ownGrid *spatial.Grid
	ownDir  spatial.Directory
}

// handshakeAll establishes a pairwise session with every peer: key
// exchange plus parameter agreement, symmetric send-then-receive.
func (h *hState) handshakeAll() error {
	p := h.party
	h.sessions = make([]*pairSession, p.K)
	for q := 0; q < p.K; q++ {
		if q == p.Index {
			continue
		}
		conn := p.Conns[q]
		paiKey, err := paillier.GenerateKey(h.random, h.cfg.PaillierBits)
		if err != nil {
			return err
		}
		rsaKey, err := yao.GenerateRSAKey(h.random, h.cfg.RSABits)
		if err != nil {
			return err
		}
		rsaN, rsaE := yao.MarshalRSAPublicKey(&rsaKey.RSAPublicKey)
		msg := transport.NewBuilder().
			PutUint(meshHandshakeVersion).
			PutInt(h.epsSq).
			PutUint(uint64(h.cfg.MinPts)).
			PutInt(h.cfg.MaxCoord).
			PutString(string(h.cfg.Engine)).
			PutString(string(h.cfg.Batching)).
			PutString(string(h.cfg.Pruning)).
			PutUint(uint64(h.cfg.PruneQuantum)).
			PutUint(uint64(h.cfg.Parallel)).
			PutUint(uint64(h.m)).
			PutUint(uint64(len(h.enc))).
			PutBytes(paillier.MarshalPublicKey(&paiKey.PublicKey)).
			PutBytes(rsaN).
			PutBytes(rsaE)
		if err := transport.SendMsg(conn, msg); err != nil {
			return fmt.Errorf("handshake with %d: %w", q, err)
		}
		r, err := transport.RecvMsg(conn)
		if err != nil {
			return fmt.Errorf("handshake with %d: %w", q, err)
		}
		pVersion := int(r.Uint())
		pEpsSq := r.Int()
		pMinPts := int(r.Uint())
		pMaxCoord := r.Int()
		pEngine := r.String()
		pBatching := r.String()
		pPruning := r.String()
		pQuantum := int(r.Uint())
		pParallel := int(r.Uint())
		pM := int(r.Uint())
		pN := int(r.Uint())
		paiB := r.Bytes()
		rsaNB := r.Bytes()
		rsaEB := r.Bytes()
		if r.Err() != nil {
			return r.Err()
		}
		switch {
		case pVersion != meshHandshakeVersion:
			return fmt.Errorf("%w: version %d vs %d with party %d", ErrHandshake, meshHandshakeVersion, pVersion, q)
		case pEpsSq != h.epsSq:
			return fmt.Errorf("%w: Eps² %d vs %d with party %d", ErrHandshake, h.epsSq, pEpsSq, q)
		case pMinPts != h.cfg.MinPts:
			return fmt.Errorf("%w: MinPts with party %d", ErrHandshake, q)
		case pMaxCoord != h.cfg.MaxCoord:
			return fmt.Errorf("%w: MaxCoord with party %d", ErrHandshake, q)
		case pEngine != string(h.cfg.Engine):
			return fmt.Errorf("%w: engine with party %d", ErrHandshake, q)
		case pBatching != string(h.cfg.Batching):
			return fmt.Errorf("%w: batching with party %d", ErrHandshake, q)
		case pPruning != string(h.cfg.Pruning):
			return fmt.Errorf("%w: pruning with party %d", ErrHandshake, q)
		case pQuantum != h.cfg.PruneQuantum:
			return fmt.Errorf("%w: prune quantum with party %d", ErrHandshake, q)
		case pParallel != h.cfg.Parallel:
			return fmt.Errorf("%w: parallel width with party %d", ErrHandshake, q)
		case pM != h.m:
			return fmt.Errorf("%w: dimension %d vs %d with party %d", ErrHandshake, h.m, pM, q)
		}
		sess := &pairSession{paiKey: paiKey, rsaKey: rsaKey, peerN: pN}
		sess.peerPai, err = paillier.UnmarshalPublicKey(paiB)
		if err != nil {
			return err
		}
		sess.peerRSA, err = yao.UnmarshalRSAPublicKey(rsaNB, rsaEB)
		if err != nil {
			return err
		}
		var seedBytes [8]byte
		if _, err := io.ReadFull(h.random, seedBytes[:]); err != nil {
			return err
		}
		sess.rng = mrand.New(mrand.NewSource(int64(binary.LittleEndian.Uint64(seedBytes[:]) >> 1)))
		if err := h.buildPairEngines(sess); err != nil {
			return err
		}
		if h.pruneOn {
			// Candidate-index exchange, as in the two-party protocol
			// (core.exchangeIndex): padded occupancy directories per pair.
			// The lower-indexed party sends first so large directory frames
			// cannot deadlock a real socket on simultaneous sends.
			msg := h.ownDir.Encode(transport.NewBuilder())
			var ir *transport.Reader
			var err error
			if p.Index < q {
				if err = transport.SendMsg(conn, msg); err == nil {
					ir, err = transport.RecvMsg(conn)
				}
			} else {
				if ir, err = transport.RecvMsg(conn); err == nil {
					err = transport.SendMsg(conn, msg)
				}
			}
			if err != nil {
				return fmt.Errorf("index exchange with %d: %w", q, err)
			}
			sess.peerDir, err = spatial.DecodeDirectory(ir, h.m, h.cfg.PruneQuantum)
			if err != nil {
				return fmt.Errorf("index exchange with %d: %w", q, err)
			}
		}
		h.sessions[q] = sess
	}
	return nil
}

// buildPairEngines constructs the split-threshold comparators over
// [0, bound+1] (the Less/clamp embedding of a + b ≤ Eps²).
func (h *hState) buildPairEngines(sess *pairSession) error {
	bound := h.bound + 1
	switch h.cfg.Engine {
	case compare.EngineYMPP:
		if bound+2 > yao.MaxDomain {
			return fmt.Errorf("multiparty: comparison domain %d exceeds YMPP limit; use Engine=masked", bound+2)
		}
		sess.cmpA = &compare.YMPPAlice{Key: sess.rsaKey, Max: bound, Random: h.random, Pool: h.cfg.Pool}
		sess.cmpB = &compare.YMPPBob{Pub: sess.peerRSA, Max: bound, Random: h.random}
	case compare.EngineMasked:
		limit := new(big.Int).Lsh(big.NewInt(bound+2), uint(h.cfg.CmpMaskBits))
		if limit.Cmp(sess.paiKey.PlaintextBound()) >= 0 || limit.Cmp(sess.peerPai.PlaintextBound()) >= 0 {
			return fmt.Errorf("multiparty: comparison bound overflows the Paillier plaintext space")
		}
		sess.cmpA = &compare.MaskedAlice{Key: sess.paiKey, Max: bound, Random: h.random, Pool: h.cfg.Pool}
		sess.cmpB = &compare.MaskedBob{Pub: sess.peerPai, Max: bound, MaskBits: h.cfg.CmpMaskBits, Random: h.random, Pool: h.cfg.Pool}
	default:
		return fmt.Errorf("multiparty: unknown engine %q", h.cfg.Engine)
	}
	return nil
}

// meshHandshakeVersion guards against protocol drift between binaries;
// version 2 added the Pruning parameters to the pairwise handshake;
// version 3 added the Parallel fan-out width.
const meshHandshakeVersion = 3

// Ops on the driver→responder control channel (per peer connection).
const (
	hOpQuery uint64 = 1
	hOpDone  uint64 = 2
)

// drive runs this party's Algorithm 3/4 pass, querying every peer.
func (h *hState) drive() ([]int, int, error) {
	labels := make([]int, len(h.enc))
	for i := range labels {
		labels[i] = dbscan.Unclassified
	}
	clusterID := 0
	for i := range h.enc {
		if labels[i] != dbscan.Unclassified {
			continue
		}
		expanded, err := h.expand(i, clusterID+1, labels)
		if err != nil {
			return nil, 0, err
		}
		if expanded {
			clusterID++
		}
	}
	for q := 0; q < h.party.K; q++ {
		if q == h.party.Index {
			continue
		}
		if err := transport.SendMsg(h.party.Conns[q], transport.NewBuilder().PutUint(hOpDone)); err != nil {
			return nil, 0, err
		}
	}
	return labels, clusterID, nil
}

func (h *hState) localRegionQuery(i int) []int {
	var out []int
	for j := range h.enc {
		if fixedpoint.DistSq(h.enc[i], h.enc[j]) <= h.epsSq {
			out = append(out, j)
		}
	}
	return out
}

// totalCount sums the query point's neighbours across all peers. With
// Config.Parallel > 1 the per-peer HDP sub-queries — each a complete
// two-party exchange on its own mesh edge — run concurrently, so one
// region query costs the slowest peer's round trips instead of the sum;
// the per-peer counts, and therefore the total and every disclosure, are
// unchanged.
func (h *hState) totalCount(x []int64) (int, error) {
	h.queries++
	if h.cfg.Parallel > 1 {
		counts := make([]int, h.party.K)
		errs := make([]error, h.party.K)
		var wg sync.WaitGroup
		for q := 0; q < h.party.K; q++ {
			if q == h.party.Index {
				continue
			}
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				counts[q], errs[q] = h.queryPeer(q, x)
			}(q)
		}
		wg.Wait()
		total := 0
		for q := 0; q < h.party.K; q++ {
			if errs[q] != nil {
				return 0, fmt.Errorf("querying party %d: %w", q, errs[q])
			}
			total += counts[q]
		}
		return total, nil
	}
	total := 0
	for q := 0; q < h.party.K; q++ {
		if q == h.party.Index {
			continue
		}
		c, err := h.queryPeer(q, x)
		if err != nil {
			return 0, fmt.Errorf("querying party %d: %w", q, err)
		}
		total += c
	}
	return total, nil
}

// queryPeer runs one two-party HDP region query against peer q. Under
// grid pruning the query announces its candidate cells and runs only over
// their padded occupancy; no candidates means no frames at all.
func (h *hState) queryPeer(q int, x []int64) (int, error) {
	sess := h.sessions[q]
	conn := h.party.Conns[q]
	if sess.peerN == 0 {
		return 0, nil
	}
	nCand := sess.peerN
	msg := transport.NewBuilder().PutUint(hOpQuery)
	if h.pruneOn {
		cells, total := sess.peerDir.Candidates(spatial.Bucket(x, h.cellW))
		usePrune := total < sess.peerN
		msg.PutBool(usePrune)
		if usePrune {
			nCand = total
			spatial.EncodeCells(msg, cells)
		}
		if err := transport.SendMsg(conn, msg); err != nil {
			return 0, err
		}
		if nCand == 0 {
			return 0, nil
		}
	} else if err := transport.SendMsg(conn, msg); err != nil {
		return 0, err
	}
	// MP phase: we are the sender (peer receives masked products under its
	// own key).
	ys := make([]int64, 0, nCand*h.m)
	vs := make([]*big.Int, 0, nCand*h.m)
	maskBound := new(big.Int).Lsh(big.NewInt(1), 62)
	for i := 0; i < nCand; i++ {
		masks, err := mpc.ZeroSumMasks(h.random, h.m, maskBound)
		if err != nil {
			return 0, err
		}
		ys = append(ys, x...)
		vs = append(vs, masks...)
	}
	if err := mpc.SenderBatchMultiply(conn, sess.peerPai, ys, vs, h.random, h.cfg.Pool); err != nil {
		return 0, err
	}
	// Comparison phase: we hold the left value Σx².
	var ownSum int64
	for _, v := range x {
		ownSum += v * v
	}
	count := 0
	if h.cfg.Batching == core.BatchModeBatched {
		vs := make([]int64, nCand)
		for i := range vs {
			vs[i] = ownSum
		}
		ins, err := sess.cmpA.BatchLess(conn, vs)
		if err != nil {
			return 0, err
		}
		for _, in := range ins {
			if in {
				count++
			}
		}
		return count, nil
	}
	for i := 0; i < nCand; i++ {
		in, err := sess.cmpA.Less(conn, ownSum)
		if err != nil {
			return 0, err
		}
		if in {
			count++
		}
	}
	return count, nil
}

// expand is Algorithm 4 with multi-peer counts.
func (h *hState) expand(point, clusterID int, labels []int) (bool, error) {
	seeds := h.localRegionQuery(point)
	remote, err := h.totalCount(h.enc[point])
	if err != nil {
		return false, err
	}
	if len(seeds)+remote < h.cfg.MinPts {
		labels[point] = dbscan.Noise
		return false, nil
	}
	for _, s := range seeds {
		labels[s] = clusterID
	}
	queue := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s != point {
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		result := h.localRegionQuery(cur)
		remote, err := h.totalCount(h.enc[cur])
		if err != nil {
			return false, err
		}
		if len(result)+remote < h.cfg.MinPts {
			continue
		}
		for _, r := range result {
			if labels[r] == dbscan.Unclassified || labels[r] == dbscan.Noise {
				if labels[r] == dbscan.Unclassified {
					queue = append(queue, r)
				}
				labels[r] = clusterID
			}
		}
	}
	return true, nil
}

// respond serves the driving party's pass on the shared connection.
func (h *hState) respond(driver int) error {
	sess := h.sessions[driver]
	conn := h.party.Conns[driver]
	for {
		r, err := transport.RecvMsg(conn)
		if err != nil {
			return err
		}
		op := r.Uint()
		if r.Err() != nil {
			return r.Err()
		}
		switch op {
		case hOpQuery:
			if err := h.serveQuery(sess, conn, r); err != nil {
				return err
			}
		case hOpDone:
			return nil
		default:
			return fmt.Errorf("unexpected op %d from party %d", op, driver)
		}
	}
}

// serveQuery answers one HDP region query over our own (permuted) points.
// Under grid pruning the op frame carries the candidate cells; we serve
// their real members padded with always-out-of-range dummies to the
// disclosed counts, exactly as core.hdpServeCompare.
func (h *hState) serveQuery(sess *pairSession, conn transport.Conn, r *transport.Reader) error {
	pts := h.enc
	nDummy := 0
	if h.pruneOn {
		usePrune := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if usePrune {
			cells, err := spatial.DecodeCells(r, h.m)
			if err != nil {
				return fmt.Errorf("multiparty: query cells: %w", err)
			}
			members, pad, err := h.ownDir.ResolveQuery(h.ownGrid, cells)
			if err != nil {
				return fmt.Errorf("multiparty: query cells: %w", err)
			}
			pts = make([][]int64, len(members))
			for i, j := range members {
				pts[i] = h.enc[j]
			}
			nDummy = pad
		}
	}
	total := len(pts) + nDummy
	if total == 0 {
		return nil
	}
	perm := sess.rng.Perm(total)
	xs := make([]int64, 0, total*h.m)
	zero := make([]int64, h.m)
	for _, pi := range perm {
		if pi < len(pts) {
			xs = append(xs, pts[pi]...)
		} else {
			xs = append(xs, zero...)
		}
	}
	us, err := mpc.ReceiverBatchMultiply(conn, sess.paiKey, xs, h.random, h.cfg.Pool)
	if err != nil {
		return err
	}
	js := make([]int64, len(perm))
	for i, pi := range perm {
		if pi >= len(pts) {
			js[i] = 0 // dummy: strict Less is false for every driver operand
			continue
		}
		dot := new(big.Int)
		for k := 0; k < h.m; k++ {
			dot.Add(dot, us[i*h.m+k])
		}
		if !dot.IsInt64() {
			return fmt.Errorf("multiparty: hdp dot product overflow")
		}
		var sq int64
		for _, v := range pts[pi] {
			sq += v * v
		}
		peerSum := sq - 2*dot.Int64()
		j := h.epsSq - peerSum + 1
		if j < 0 {
			j = 0
		}
		if maxV := sess.cmpB.Bound(); j > maxV {
			j = maxV
		}
		js[i] = j
	}
	if h.cfg.Batching == core.BatchModeBatched {
		_, err := sess.cmpB.BatchLess(conn, js)
		return err
	}
	for _, j := range js {
		if _, err := sess.cmpB.Less(conn, j); err != nil {
			return err
		}
	}
	return nil
}

// NewLocalMesh builds a full in-process mesh for k parties: mesh[p][q] is
// party p's connection to party q.
func NewLocalMesh(k int) [][]transport.Conn {
	mesh := make([][]transport.Conn, k)
	for p := range mesh {
		mesh[p] = make([]transport.Conn, k)
	}
	for p := 0; p < k; p++ {
		for q := p + 1; q < k; q++ {
			a, b := transport.Pipe()
			mesh[p][q] = a
			mesh[q][p] = b
		}
	}
	return mesh
}
