package multiparty

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/dbscan"
	"repro/internal/encoding"
	"repro/internal/fixedpoint"
	"repro/internal/mpc"
	"repro/internal/paillier"
	"repro/internal/spatial"
	"repro/internal/transport"
	"repro/internal/yao"
)

// The k-party horizontal extension generalizes Algorithm 3/4: every party
// holds complete records and runs its own driving pass in index order;
// during party p's pass each other party answers HDP region queries, so a
// query point's density count is |own neighbours| + Σ_q |peer q's
// neighbours|. As in the two-party protocol, expansion walks only the
// driver's own points and cluster ids are local to each party.
//
// Disclosure note (DESIGN.md): pairwise composition reveals per-peer
// neighbour counts to the driver (finer-grained than the two-party
// protocol's single count), plus the HDP dot products to each responder —
// the natural cost of composing the paper's two-party building block.

// HorizontalParty describes one participant in the k-party horizontal
// protocol, connected to every other party.
type HorizontalParty struct {
	Index int
	K     int
	// Conns[q] connects to party q; Conns[Index] is unused (may be nil).
	Conns []transport.Conn
}

func (p HorizontalParty) validate() error {
	if p.K < 2 {
		return fmt.Errorf("multiparty: need ≥ 2 parties, got %d", p.K)
	}
	if p.Index < 0 || p.Index >= p.K {
		return fmt.Errorf("multiparty: index %d outside [0,%d)", p.Index, p.K)
	}
	if len(p.Conns) != p.K {
		return fmt.Errorf("multiparty: party %d has %d connections, want %d", p.Index, len(p.Conns), p.K)
	}
	for q, c := range p.Conns {
		if q != p.Index && c == nil {
			return fmt.Errorf("multiparty: party %d missing connection to %d", p.Index, q)
		}
	}
	return nil
}

// HorizontalResult is one party's output: labels for its own points.
type HorizontalResult struct {
	Labels      []int
	NumClusters int
	// RegionQueries counts the driving-side region queries this party
	// issued (each reveals k−1 per-peer neighbour counts to it); cached
	// queries count too — the decision-level budget convention.
	RegionQueries int
	// CachedCounts counts the per-peer membership predicates a
	// MeshSession run answered from its cross-run cache instead of
	// running HDP — zero for one-shot runs and a session's first run.
	CachedCounts int64
	// CiphertextsSent counts the Paillier ciphertexts this party put on
	// the wire during the run (HDP frames in both roles plus its side of
	// the masked comparisons) — the quantity slot packing compresses.
	// YMPP RSA payloads are not counted. Always equal to
	// CiphertextsUplink + CiphertextsDownlink; retained as the
	// compatibility sum.
	CiphertextsSent int64
	// CiphertextsUplink is the request-leg share: the encrypted
	// coordinates this party scatters when serving HDP under its own key
	// plus its driving-side comparison uplinks — the leg "full" packing
	// exists to shrink (the driver's per-query comparison operands are
	// all equal, so the grouped uplink collapses them to one ciphertext).
	CiphertextsUplink int64
	// CiphertextsDownlink is the response-leg share: the masked products
	// this party sends against a peer's encrypted coordinates plus its
	// responding-side comparison replies — the leg "slots" packing
	// shrinks.
	CiphertextsDownlink int64
}

// pairSession holds the cryptographic state shared with one specific
// peer, including the streaming structures: the peer's per-generation
// directories, per-generation counts, and the driver-side cache of
// region-count segments keyed by our point index (permanently exact over
// live generations — distances are immutable). Expired generations stay
// in place as husks — empty directories, zeroed counts — so generation
// numbers are stable for the session's life and both edge endpoints
// agree on any watermark, even one below the dead prefix.
type pairSession struct {
	paiKey  *paillier.PrivateKey
	rsaKey  *yao.RSAKey
	peerPai *paillier.PublicKey
	peerRSA *yao.RSAPublicKey
	cmpA    compare.Alice   // we drive: we hold the left value
	cmpB    compare.Bob     // we respond: peer holds the left value
	peerN   int             // peer's live record count
	rng     core.PermSource // per-query permutation when we respond

	peerDirs   []spatial.Directory // per-generation padded directories (pruning)
	peerGenCnt []int               // per-generation peer counts (dead gens zeroed)
	cacheMu    sync.Mutex          // guards cache: wave workers query this peer concurrently
	cache      *core.CountCache    // own point → cached count segments over peer gens

	// Slot packers (nil with packing off), derived identically on both
	// edge endpoints from the handshake parameters and the exchanged
	// public keys. mpPackPeer sizes HDP grid frames we send under the
	// peer's key; mpPackOwn sizes the frames we serve under our own key.
	mpPackPeer *encoding.Packer
	mpPackOwn  *encoding.Packer
}

// peerSuffix counts the peer's points in generations [from, …).
func (sess *pairSession) peerSuffix(from int) int {
	n := 0
	for g := from; g < len(sess.peerGenCnt); g++ {
		n += sess.peerGenCnt[g]
	}
	return n
}

// RunHorizontal executes the k-party horizontal protocol for one party.
// All parties must call it concurrently over a consistent mesh. This is
// the one-shot form; NewMeshSession adds streaming appends and cross-run
// caching.
func RunHorizontal(party HorizontalParty, cfg Config, points [][]float64) (*HorizontalResult, error) {
	ms, err := NewMeshSession(party, cfg, points)
	if err != nil {
		return nil, err
	}
	return ms.Run()
}

// MeshSession is one party's long-lived mesh (k-party horizontal)
// session: establishment once, many Run calls, Append between them —
// every party calls the same method sequence concurrently.
type MeshSession struct {
	h    *hState
	runs int
}

// NewMeshSession establishes the pairwise key/handshake/index state with
// every peer.
func NewMeshSession(party HorizontalParty, cfg Config, points [][]float64) (*MeshSession, error) {
	h, err := newMeshState(party, cfg, points)
	if err != nil {
		return nil, err
	}
	return &MeshSession{h: h}, nil
}

// Runs reports the completed Run calls.
func (ms *MeshSession) Runs() int { return ms.runs }

// Run executes one k-pass clustering (each party drives once, in index
// order) over the session state, reusing every cached region-count
// prefix.
func (ms *MeshSession) Run() (*HorizontalResult, error) {
	h := ms.h
	h.queries.Store(0)
	h.cached.Store(0)
	h.ctsUp.Store(0)
	h.ctsDown.Store(0)
	var labels []int
	var clusters int
	var err error
	for pass := 0; pass < h.party.K; pass++ {
		if pass == h.party.Index {
			labels, clusters, err = h.drive()
		} else {
			err = h.respond(pass)
		}
		if err != nil {
			return nil, fmt.Errorf("multiparty: pass %d: %w", pass, err)
		}
	}
	ms.runs++
	up, down := h.ctsUp.Load(), h.ctsDown.Load()
	return &HorizontalResult{Labels: labels, NumClusters: clusters, RegionQueries: int(h.queries.Load()),
		CachedCounts: h.cached.Load(), CiphertextsSent: up + down,
		CiphertextsUplink: up, CiphertextsDownlink: down}, nil
}

// Append absorbs this party's appended batch: every party calls Append
// concurrently with its own new points (any count, including none). Each
// mesh edge swaps the batch count plus — under pruning — a
// spatial.GridDelta of the touched cells; the points themselves never
// cross the wire, and cached prefix counts stay valid because appended
// generations only extend the suffix.
func (ms *MeshSession) Append(points [][]float64) error {
	h := ms.h
	for i, row := range points {
		if len(row) != h.m {
			return fmt.Errorf("multiparty: appended point %d has %d attributes, want %d", i, len(row), h.m)
		}
	}
	codec, err := fixedpoint.New(h.cfg.Scale, h.cfg.Offset)
	if err != nil {
		return err
	}
	enc, err := codec.EncodePoints(points)
	if err != nil {
		return err
	}
	for i, row := range enc {
		for j, v := range row {
			if v > h.cfg.MaxCoord {
				return fmt.Errorf("multiparty: appended point %d attribute %d encodes to %d > MaxCoord %d", i, j, v, h.cfg.MaxCoord)
			}
		}
	}
	var delta spatial.Directory
	if h.pruneOn {
		if delta, err = h.ownStack.Append(enc); err != nil {
			return err
		}
	}
	gen := len(h.ownGenStart) + 1 // 1-based generation number of this delta
	p := h.party
	for q := 0; q < p.K; q++ {
		if q == p.Index {
			continue
		}
		sess := h.sessions[q]
		conn := h.chans[q][0]
		msg := transport.NewBuilder().PutUint(uint64(len(enc)))
		if h.pruneOn {
			spatial.GridDelta{Gen: gen, Dir: delta}.Encode(msg)
		}
		// The lower-indexed party sends first, as in the establishment
		// index exchange, so simultaneous appends cannot deadlock a real
		// socket.
		var r *transport.Reader
		if p.Index < q {
			if err = transport.SendMsg(conn, msg); err == nil {
				r, err = transport.RecvMsg(conn)
			}
		} else {
			if r, err = transport.RecvMsg(conn); err == nil {
				err = transport.SendMsg(conn, msg)
			}
		}
		if err != nil {
			return fmt.Errorf("multiparty: append exchange with %d: %w", q, err)
		}
		peerCount := int(r.Uint())
		if err := r.Err(); err != nil {
			return err
		}
		if peerCount < 0 {
			return fmt.Errorf("multiparty: party %d appends %d points", q, peerCount)
		}
		if h.pruneOn {
			peerDelta, err := spatial.DecodeGridDelta(r, h.m, h.cfg.PruneQuantum, len(sess.peerDirs)+1)
			if err != nil {
				return fmt.Errorf("multiparty: append delta from %d: %w", q, err)
			}
			sess.peerDirs = append(sess.peerDirs, peerDelta.Dir)
		}
		sess.peerGenCnt = append(sess.peerGenCnt, peerCount)
		sess.peerN += peerCount
	}
	h.ownGenStart = append(h.ownGenStart, len(h.enc))
	h.enc = append(h.enc, enc...)
	return nil
}

// Expire slides the mesh window: the oldest gens generations leave on
// every party at once. All parties must call Expire concurrently with
// the same argument — like Append, the exchange is symmetric. Each mesh
// edge swaps a spatial.TombstoneDelta pinned to the shared dead prefix,
// so an endpoint that drifted out of generation lockstep fails loudly
// instead of silently diverging. Locally the expired generations become
// husks: own points are compacted out, the peer's per-generation counts
// zero, its directories empty, and every cached region-count segment is
// rebased onto the surviving own indices (segments over expired peer
// generations are trimmed lazily at the next query). Generation numbers
// are never reused.
func (ms *MeshSession) Expire(gens int) error {
	h := ms.h
	live := len(h.ownGenStart) - h.dead
	if gens < 1 || gens > live {
		return fmt.Errorf("multiparty: expire %d of %d live generations", gens, live)
	}
	td := spatial.TombstoneDelta{From: h.dead, N: gens}
	p := h.party
	for q := 0; q < p.K; q++ {
		if q == p.Index {
			continue
		}
		conn := h.chans[q][0]
		msg := td.Encode(transport.NewBuilder())
		// Lower-indexed party sends first, as in Append, so simultaneous
		// expiries cannot deadlock a real socket.
		var r *transport.Reader
		var err error
		if p.Index < q {
			if err = transport.SendMsg(conn, msg); err == nil {
				r, err = transport.RecvMsg(conn)
			}
		} else {
			if r, err = transport.RecvMsg(conn); err == nil {
				err = transport.SendMsg(conn, msg)
			}
		}
		if err != nil {
			return fmt.Errorf("multiparty: tombstone exchange with %d: %w", q, err)
		}
		peerTd, err := spatial.DecodeTombstoneDelta(r, h.dead, live)
		if err != nil {
			return fmt.Errorf("multiparty: tombstone from %d: %w", q, err)
		}
		if peerTd.N != gens {
			return fmt.Errorf("multiparty: party %d expires %d generations, we expire %d", q, peerTd.N, gens)
		}
	}
	// Every edge agreed; apply the expiry locally.
	end := h.dead + gens
	ownRemoved := len(h.enc)
	if end < len(h.ownGenStart) {
		ownRemoved = h.ownGenStart[end]
	}
	h.enc = h.enc[ownRemoved:]
	for g := range h.ownGenStart {
		if g < end {
			h.ownGenStart[g] = 0
		} else {
			h.ownGenStart[g] -= ownRemoved
		}
	}
	if h.pruneOn {
		if _, err := h.ownStack.Expire(gens); err != nil {
			return err
		}
	}
	for q := 0; q < p.K; q++ {
		if q == p.Index {
			continue
		}
		sess := h.sessions[q]
		for g := h.dead; g < end; g++ {
			sess.peerN -= sess.peerGenCnt[g]
			sess.peerGenCnt[g] = 0
			if sess.peerDirs != nil {
				sess.peerDirs[g] = spatial.Directory{Dim: h.m}
			}
		}
		sess.cache.Remap(ownRemoved)
	}
	h.dead = end
	return nil
}

// Retract deletes individual records from the live mesh window: every
// party calls Retract concurrently with the strictly ascending live
// indices of its *own* points to delete (any count, including none —
// a party with nothing to retract participates with an empty list).
// Each mesh edge swaps a validated spatial.PointTombstone, lower-indexed
// party first; the retraction applies only after every edge agreed, so a
// malformed tombstone fails the exchange loudly before any state
// changes. Locally the own retracted rows compact out of enc (the
// numbering a fresh session over the survivors would use), the index
// stack masks their slots (disclosed directories are untouched — masked
// slots keep answering as dummies, so per-query wire sizes never
// change), each peer's per-generation counts shrink, and the cached
// region-count segments die exactly where a retracted point could sit
// inside them: our own retracted points' entries vanish and survivors
// remap by rank, and segments covering a peer generation that lost
// points are dropped for re-derivation.
func (ms *MeshSession) Retract(ids []int) error {
	h := ms.h
	if err := spatial.ValidateRetractIDs(ids, len(h.enc)); err != nil {
		return fmt.Errorf("multiparty: retract: %w", err)
	}
	p := h.party
	peerIDs := make([][]int, p.K)
	for q := 0; q < p.K; q++ {
		if q == p.Index {
			continue
		}
		sess := h.sessions[q]
		conn := h.chans[q][0]
		msg := spatial.PointTombstone{IDs: ids}.Encode(transport.NewBuilder())
		// Lower-indexed party sends first, as in Append, so simultaneous
		// retractions cannot deadlock a real socket.
		var r *transport.Reader
		var err error
		if p.Index < q {
			if err = transport.SendMsg(conn, msg); err == nil {
				r, err = transport.RecvMsg(conn)
			}
		} else {
			if r, err = transport.RecvMsg(conn); err == nil {
				err = transport.SendMsg(conn, msg)
			}
		}
		if err != nil {
			return fmt.Errorf("multiparty: retract exchange with %d: %w", q, err)
		}
		tomb, err := spatial.DecodePointTombstone(r, sess.peerN)
		if err != nil {
			return fmt.Errorf("multiparty: retract tombstone from %d: %w", q, err)
		}
		peerIDs[q] = tomb.IDs
	}
	// Every edge agreed; apply the retraction locally.
	if len(ids) > 0 {
		if h.pruneOn {
			if err := h.ownStack.Retract(ids); err != nil {
				return err
			}
		}
		kept := h.enc[:0]
		next := 0
		for i, row := range h.enc {
			if next < len(ids) && ids[next] == i {
				next++
				continue
			}
			kept = append(kept, row)
		}
		h.enc = kept
		for g, start := range h.ownGenStart {
			if g < h.dead {
				continue
			}
			n := 0
			for _, id := range ids {
				if id < start {
					n++
				}
			}
			h.ownGenStart[g] = start - n
		}
	}
	for q := 0; q < p.K; q++ {
		if q == p.Index {
			continue
		}
		sess := h.sessions[q]
		sess.cache.RetractOwn(ids)
		pids := peerIDs[q]
		if len(pids) == 0 {
			continue
		}
		// Map each retracted peer id (pre-retraction live numbering) to
		// its generation, then shrink the counts and drop stale segments.
		dec := make(map[int]int)
		g, cum := 0, 0
		for _, id := range pids {
			for g < len(sess.peerGenCnt) && id >= cum+sess.peerGenCnt[g] {
				cum += sess.peerGenCnt[g]
				g++
			}
			dec[g]++
		}
		affected := make(map[int]bool, len(dec))
		for g, d := range dec {
			sess.peerGenCnt[g] -= d
			sess.peerN -= d
			affected[g] = true
		}
		sess.cache.DropGens(affected)
	}
	return nil
}

// newMeshState performs the mesh establishment.
func newMeshState(party HorizontalParty, cfg Config, points [][]float64) (*hState, error) {
	if err := party.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("multiparty: party %d holds no points", party.Index)
	}
	m := len(points[0])
	for i, row := range points {
		if len(row) != m {
			return nil, fmt.Errorf("multiparty: point %d has %d attributes, want %d", i, len(row), m)
		}
	}
	codec, err := fixedpoint.New(cfg.Scale, cfg.Offset)
	if err != nil {
		return nil, err
	}
	enc, err := codec.EncodePoints(points)
	if err != nil {
		return nil, err
	}
	for i, row := range enc {
		for j, v := range row {
			if v > cfg.MaxCoord {
				return nil, fmt.Errorf("multiparty: point %d attribute %d encodes to %d > MaxCoord %d", i, j, v, cfg.MaxCoord)
			}
		}
	}
	epsSq, err := codec.EpsSquared(cfg.Eps)
	if err != nil {
		return nil, err
	}
	random := cfg.Random
	if random == nil {
		random = rand.Reader
	}
	if cfg.Parallel > 1 {
		// The driving pass queries all peers concurrently; the configured
		// reader is not assumed goroutine-safe.
		random = transport.LockedReader(random)
	}

	h := &hState{
		party: party, cfg: cfg, enc: enc, epsSq: epsSq, random: random,
		bound:       int64(m) * cfg.MaxCoord * cfg.MaxCoord,
		m:           m,
		ownGenStart: []int{0},
	}
	// Per-edge worker channels: with W > 1 every mesh edge is multiplexed
	// exactly like a ring edge (edgeChannels), so the wave scheduler can
	// run W independent query streams per peer.
	h.chans = make([][]transport.Conn, party.K)
	for q := 0; q < party.K; q++ {
		if q == party.Index {
			continue
		}
		h.chans[q] = edgeChannels(party.Conns[q], cfg.Parallel)
	}
	if h.bound <= 0 || h.bound > int64(1)<<50 {
		return nil, fmt.Errorf("multiparty: dist² bound %d out of range", h.bound)
	}
	if h.epsSq > h.bound {
		h.epsSq = h.bound
	}
	// Grid pruning engages as in the two-party protocol: config-requested
	// and geometrically useful (see core/session).
	h.pruneOn = cfg.Pruning == core.PruneGrid && h.epsSq < h.bound
	if h.pruneOn {
		h.cellW = spatial.CellWidth(h.epsSq)
		st, err := spatial.NewStack(h.cellW, h.m, cfg.PruneQuantum)
		if err != nil {
			return nil, err
		}
		if _, err := st.Append(enc); err != nil {
			return nil, err
		}
		h.ownStack = st
	}
	if err := h.handshakeAll(); err != nil {
		return nil, err
	}
	return h, nil
}

// hState is one party's runtime for the k-party horizontal protocol.
type hState struct {
	party  HorizontalParty
	cfg    Config
	enc    [][]int64
	epsSq  int64
	bound  int64
	m      int
	random io.Reader

	sessions []*pairSession // indexed by peer
	// chans[q] are the per-worker channels of the edge to peer q: the bare
	// connection alone for W = 1 (byte-identical legacy wire behavior), or
	// the W channels of the multiplexed edge (chans[q][0] carries the
	// handshake, control ops, and streaming exchanges; wave worker t
	// queries peer q on chans[q][t]).
	chans   [][]transport.Conn
	queries atomic.Int64 // region queries issued (wave workers count concurrently)
	cached  atomic.Int64 // membership predicates served from cache this run
	// ctsUp / ctsDown split the run's Paillier ciphertext account by wire
	// direction: uplink is the request leg (the encrypted coordinates we
	// scatter when serving HDP under our own key, plus our driving-side
	// comparison uplinks via the engines' Sent hooks), downlink is the
	// response leg (masked products against a peer's operands, plus our
	// responding-side comparison replies).
	ctsUp   atomic.Int64
	ctsDown atomic.Int64

	pruneOn     bool
	cellW       int64
	ownStack    *spatial.Stack // own per-generation grids/directories (pruning)
	ownGenStart []int          // live index of each own generation's first point (dead gens clamped to 0)
	dead        int            // generations expired out of the sliding window
}

// handshakeAll establishes a pairwise session with every peer: key
// exchange plus parameter agreement, symmetric send-then-receive.
func (h *hState) handshakeAll() error {
	p := h.party
	h.sessions = make([]*pairSession, p.K)
	for q := 0; q < p.K; q++ {
		if q == p.Index {
			continue
		}
		conn := h.chans[q][0]
		paiKey, err := paillier.GenerateKey(h.random, h.cfg.PaillierBits)
		if err != nil {
			return err
		}
		rsaKey, err := yao.GenerateRSAKey(h.random, h.cfg.RSABits)
		if err != nil {
			return err
		}
		rsaN, rsaE := yao.MarshalRSAPublicKey(&rsaKey.RSAPublicKey)
		msg := transport.NewBuilder().
			PutUint(meshHandshakeVersion).
			PutInt(h.epsSq).
			PutUint(uint64(h.cfg.MinPts)).
			PutInt(h.cfg.MaxCoord).
			PutString(string(h.cfg.Engine)).
			PutString(string(h.cfg.Batching)).
			PutString(string(h.cfg.Packing)).
			PutString(string(h.cfg.Pruning)).
			PutUint(uint64(h.cfg.PruneQuantum)).
			PutUint(uint64(h.cfg.Parallel)).
			PutUint(uint64(h.m)).
			PutUint(uint64(len(h.enc))).
			PutBytes(paillier.MarshalPublicKey(&paiKey.PublicKey)).
			PutBytes(rsaN).
			PutBytes(rsaE)
		if err := transport.SendMsg(conn, msg); err != nil {
			return fmt.Errorf("handshake with %d: %w", q, err)
		}
		r, err := transport.RecvMsg(conn)
		if err != nil {
			return fmt.Errorf("handshake with %d: %w", q, err)
		}
		pVersion := int(r.Uint())
		pEpsSq := r.Int()
		pMinPts := int(r.Uint())
		pMaxCoord := r.Int()
		pEngine := r.String()
		pBatching := r.String()
		pPacking := r.String()
		pPruning := r.String()
		pQuantum := int(r.Uint())
		pParallel := int(r.Uint())
		pM := int(r.Uint())
		pN := int(r.Uint())
		paiB := r.Bytes()
		rsaNB := r.Bytes()
		rsaEB := r.Bytes()
		if r.Err() != nil {
			return r.Err()
		}
		switch {
		case pVersion != meshHandshakeVersion:
			return fmt.Errorf("%w: version %d vs %d with party %d", ErrHandshake, meshHandshakeVersion, pVersion, q)
		case pEpsSq != h.epsSq:
			return fmt.Errorf("%w: Eps² %d vs %d with party %d", ErrHandshake, h.epsSq, pEpsSq, q)
		case pMinPts != h.cfg.MinPts:
			return fmt.Errorf("%w: MinPts with party %d", ErrHandshake, q)
		case pMaxCoord != h.cfg.MaxCoord:
			return fmt.Errorf("%w: MaxCoord with party %d", ErrHandshake, q)
		case pEngine != string(h.cfg.Engine):
			return fmt.Errorf("%w: engine with party %d", ErrHandshake, q)
		case pBatching != string(h.cfg.Batching):
			return fmt.Errorf("%w: batching with party %d", ErrHandshake, q)
		case pPacking != string(h.cfg.Packing):
			return fmt.Errorf("%w: packing with party %d", ErrHandshake, q)
		case pPruning != string(h.cfg.Pruning):
			return fmt.Errorf("%w: pruning with party %d", ErrHandshake, q)
		case pQuantum != h.cfg.PruneQuantum:
			return fmt.Errorf("%w: prune quantum with party %d", ErrHandshake, q)
		case pParallel != h.cfg.Parallel:
			return fmt.Errorf("%w: parallel width with party %d", ErrHandshake, q)
		case pM != h.m:
			return fmt.Errorf("%w: dimension %d vs %d with party %d", ErrHandshake, h.m, pM, q)
		}
		sess := &pairSession{paiKey: paiKey, rsaKey: rsaKey, peerN: pN,
			peerGenCnt: []int{pN}, cache: core.NewCountCache()}
		sess.peerPai, err = paillier.UnmarshalPublicKey(paiB)
		if err != nil {
			return err
		}
		sess.peerRSA, err = yao.UnmarshalRSAPublicKey(rsaNB, rsaEB)
		if err != nil {
			return err
		}
		// Response permutations hide which of our points answered which
		// slot; they come from the session's randomness source (crypto/rand
		// unless a test injects a deterministic reader), never math/rand,
		// whose future output is predictable from observations.
		sess.rng = core.CryptoPerm(h.random)
		if err := h.buildPairEngines(sess); err != nil {
			return err
		}
		if h.pruneOn {
			// Candidate-index exchange, as in the two-party protocol
			// (core.exchangeIndex): padded occupancy directories per pair.
			// The lower-indexed party sends first so large directory frames
			// cannot deadlock a real socket on simultaneous sends.
			dir0, err := h.ownStack.Dir(0)
			if err != nil {
				return err
			}
			msg := dir0.Encode(transport.NewBuilder())
			var ir *transport.Reader
			if p.Index < q {
				if err = transport.SendMsg(conn, msg); err == nil {
					ir, err = transport.RecvMsg(conn)
				}
			} else {
				if ir, err = transport.RecvMsg(conn); err == nil {
					err = transport.SendMsg(conn, msg)
				}
			}
			if err != nil {
				return fmt.Errorf("index exchange with %d: %w", q, err)
			}
			dir, err := spatial.DecodeDirectory(ir, h.m, h.cfg.PruneQuantum)
			if err != nil {
				return fmt.Errorf("index exchange with %d: %w", q, err)
			}
			sess.peerDirs = []spatial.Directory{dir}
		}
		h.sessions[q] = sess
	}
	return nil
}

// buildPairEngines constructs the split-threshold comparators over
// [0, bound+1] (the Less/clamp embedding of a + b ≤ Eps²).
func (h *hState) buildPairEngines(sess *pairSession) error {
	bound := h.bound + 1
	switch h.cfg.Engine {
	case compare.EngineYMPP:
		if bound+2 > yao.MaxDomain {
			return fmt.Errorf("multiparty: comparison domain %d exceeds YMPP limit; use Engine=masked", bound+2)
		}
		sess.cmpA = &compare.YMPPAlice{Key: sess.rsaKey, Max: bound, Random: h.random, Pool: h.cfg.Pool}
		sess.cmpB = &compare.YMPPBob{Pub: sess.peerRSA, Max: bound, Random: h.random}
	case compare.EngineMasked:
		limit := new(big.Int).Lsh(big.NewInt(bound+2), uint(h.cfg.CmpMaskBits))
		if limit.Cmp(sess.paiKey.PlaintextBound()) >= 0 || limit.Cmp(sess.peerPai.PlaintextBound()) >= 0 {
			return fmt.Errorf("multiparty: comparison bound overflows the Paillier plaintext space")
		}
		// The engines count their own comparison traffic: our Alice role
		// sends the request-leg uplink, our Bob role the response-leg
		// replies — under "full" packing the uplink cost depends on the
		// runtime batch content, so only the engine can account for it.
		a := &compare.MaskedAlice{Key: sess.paiKey, Max: bound, Random: h.random, Pool: h.cfg.Pool, Sent: &h.ctsUp}
		b := &compare.MaskedBob{Pub: sess.peerPai, Max: bound, MaskBits: h.cfg.CmpMaskBits, Random: h.random, Pool: h.cfg.Pool, Sent: &h.ctsDown}
		if h.packing() {
			// Our Alice role pairs with the peer's Bob over our key, and
			// vice versa — each endpoint derives both packers from the same
			// (key, bound, maskBits) triple, so they agree by construction.
			ap, err := encoding.NewComparePacker(sess.paiKey.PlaintextBound(), bound, h.cfg.CmpMaskBits)
			if err != nil {
				return fmt.Errorf("multiparty: comparison packer: %w", err)
			}
			bp, err := encoding.NewComparePacker(sess.peerPai.PlaintextBound(), bound, h.cfg.CmpMaskBits)
			if err != nil {
				return fmt.Errorf("multiparty: comparison packer: %w", err)
			}
			a.Packer, b.Packer = ap, bp
			if h.fullPacking() {
				aup, err := encoding.NewUplinkComparePacker(sess.paiKey.PlaintextBound(), bound, h.cfg.CmpMaskBits)
				if err != nil {
					return fmt.Errorf("multiparty: uplink packer: %w", err)
				}
				bup, err := encoding.NewUplinkComparePacker(sess.peerPai.PlaintextBound(), bound, h.cfg.CmpMaskBits)
				if err != nil {
					return fmt.Errorf("multiparty: uplink packer: %w", err)
				}
				a.UplinkPacker, b.UplinkPacker = aup, bup
			}
		}
		sess.cmpA, sess.cmpB = a, b
	default:
		return fmt.Errorf("multiparty: unknown engine %q", h.cfg.Engine)
	}
	if h.packing() {
		// HDP grid packers, one per key direction; slots size for one
		// coordinate product plus a zero-sum mask share.
		maxProduct := h.cfg.MaxCoord * h.cfg.MaxCoord
		mb := h.packedMaskBound()
		peerPk, err := encoding.NewProductPacker(sess.peerPai.PlaintextBound(), maxProduct, mb, h.m)
		if err != nil {
			return fmt.Errorf("multiparty: product packer: %w", err)
		}
		ownPk, err := encoding.NewProductPacker(sess.paiKey.PlaintextBound(), maxProduct, mb, h.m)
		if err != nil {
			return fmt.Errorf("multiparty: product packer: %w", err)
		}
		sess.mpPackPeer, sess.mpPackOwn = peerPk, ownPk
	}
	return nil
}

// packing reports whether any slot packing is on for this session.
func (h *hState) packing() bool {
	return h.cfg.Packing == core.PackSlots || h.cfg.Packing == core.PackFull
}

// fullPacking reports whether the packed comparison uplink is on too.
func (h *hState) fullPacking() bool { return h.cfg.Packing == core.PackFull }

// packedMaskBound is the handshake-derivable zero-sum mask magnitude the
// packed HDP frames use (statistical hiding margin 2^−CmpMaskBits), in
// place of the unpacked path's fixed 2^62 bound, so both endpoints size
// identical slot widths.
func (h *hState) packedMaskBound() *big.Int {
	b := big.NewInt(h.cfg.MaxCoord * h.cfg.MaxCoord)
	return b.Lsh(b, uint(h.cfg.CmpMaskBits))
}

// meshHandshakeVersion guards against protocol drift between binaries;
// version 2 added the Pruning parameters to the pairwise handshake;
// version 3 added the Parallel fan-out width; version 4 added the
// generation watermark on query op frames and the append delta exchange;
// version 5 added the generation tombstone exchange (sliding windows);
// version 6 added the point tombstone exchange (point-level retraction);
// version 7 added the Packing plaintext-encoding parameter (slot-packed
// HDP and comparison frames); version 8 added the packed comparison
// uplink ("full" packing, a per-batch moded wire form) and the
// uplink/downlink ciphertext split; version 9 moved Parallel > 1 mesh
// edges onto W channel-tagged mux channels driven by the shared wave
// scheduler (pipelined per-edge queries, W responder workers).
const meshHandshakeVersion = 9

// Ops on the driver→responder control channel (per peer connection).
const (
	hOpQuery uint64 = 1
	hOpDone  uint64 = 2
)

// drive runs this party's Algorithm 3/4 pass, querying every peer. With
// Config.Parallel = W > 1 the pass runs on the shared wave scheduler
// (core.WaveDrive): each wave decides up to W queue items concurrently —
// worker t querying every peer on channel t of its mesh edge — and wave
// k's workers pipeline wave k+1's queries while waiting on replies,
// exactly as in the two-party horizontal family. The query multiset, the
// per-peer counts, and every disclosure class are identical to the
// sequential pass; only round trips overlap.
func (h *hState) drive() ([]int, int, error) {
	var labels []int
	var clusterID int
	var err error
	if h.cfg.Parallel > 1 {
		labels, clusterID, err = core.WaveDrive(len(h.enc), h.cfg.Parallel, h.localRegionQuery,
			func(t, point, ownCount int) (bool, error) {
				remote, err := h.totalCountOn(t, point)
				if err != nil {
					return false, err
				}
				return ownCount+remote >= h.cfg.MinPts, nil
			})
	} else {
		labels = make([]int, len(h.enc))
		for i := range labels {
			labels[i] = dbscan.Unclassified
		}
		for i := range h.enc {
			if labels[i] != dbscan.Unclassified {
				continue
			}
			var expanded bool
			if expanded, err = h.expand(i, clusterID+1, labels); err != nil {
				break
			}
			if expanded {
				clusterID++
			}
		}
	}
	if err != nil {
		return nil, 0, err
	}
	for q := 0; q < h.party.K; q++ {
		if q == h.party.Index {
			continue
		}
		for _, c := range h.chans[q] {
			if err := transport.SendMsg(c, transport.NewBuilder().PutUint(hOpDone)); err != nil {
				return nil, 0, err
			}
		}
	}
	return labels, clusterID, nil
}

func (h *hState) localRegionQuery(i int) []int {
	var out []int
	for j := range h.enc {
		if fixedpoint.DistSq(h.enc[i], h.enc[j]) <= h.epsSq {
			out = append(out, j)
		}
	}
	return out
}

// totalCountOn sums the query point's neighbours across all peers, on
// worker slot t of every mesh edge. With Config.Parallel > 1 the
// per-peer HDP sub-queries — each a complete two-party exchange on its
// own mesh edge — run concurrently, so one region query costs the
// slowest peer's round trips instead of the sum; the per-peer counts,
// and therefore the total and every disclosure, are unchanged.
func (h *hState) totalCountOn(t, i int) (int, error) {
	h.queries.Add(1)
	if h.cfg.Parallel > 1 {
		counts := make([]int, h.party.K)
		errs := make([]error, h.party.K)
		var wg sync.WaitGroup
		for q := 0; q < h.party.K; q++ {
			if q == h.party.Index {
				continue
			}
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				counts[q], errs[q] = h.queryPeer(t, q, i)
			}(q)
		}
		wg.Wait()
		total := 0
		for q := 0; q < h.party.K; q++ {
			if errs[q] != nil {
				return 0, fmt.Errorf("querying party %d: %w", q, errs[q])
			}
			total += counts[q]
		}
		return total, nil
	}
	total := 0
	for q := 0; q < h.party.K; q++ {
		if q == h.party.Index {
			continue
		}
		c, err := h.queryPeer(t, q, i)
		if err != nil {
			return 0, fmt.Errorf("querying party %d: %w", q, err)
		}
		total += c
	}
	return total, nil
}

// queryPeer runs one HDP region query against peer q for our point i as
// a sweep of per-generation sub-queries. The cross-run cache answers the
// prefix (from the window's dead boundary up); each uncached generation
// then runs the cryptographic phases on its own, announced as the span
// [g, g+1) on the op frame, and its fresh count is cached as a segment
// aligned with the generation boundary — so an expiry drops exactly the
// dead generations' segments and every survivor stays contiguous from
// the new window edge, where a single suffix-wide segment would straddle
// every expiry boundary and die with it. A fully-cached query, an empty
// generation, or a sub-query whose candidate cells are empty issues no
// frames at all.
func (h *hState) queryPeer(t, q, i int) (int, error) {
	sess := h.sessions[q]
	conn := h.chans[q][t]
	if sess.peerN == 0 {
		return 0, nil
	}
	// Wave workers hit the same peer's cache concurrently — always for
	// distinct own points (each point is queried once per pass), so the
	// lock protects only the map structure, never a cache decision.
	sess.cacheMu.Lock()
	base, fromGen := sess.cache.Covered(i, h.dead)
	sess.cacheMu.Unlock()
	gens := len(sess.peerGenCnt)
	h.cached.Add(int64(sess.peerN - sess.peerSuffix(fromGen)))
	x := h.enc[i]
	count := base
	for g := fromGen; g < gens; g++ {
		fresh := 0
		if sess.peerGenCnt[g] > 0 {
			var err error
			if fresh, err = h.queryGen(sess, conn, x, g, sess.peerGenCnt[g]); err != nil {
				return 0, err
			}
		}
		count += fresh
		sess.cacheMu.Lock()
		sess.cache.Extend(i, g, g+1, fresh)
		sess.cacheMu.Unlock()
	}
	return count, nil
}

// queryGen runs the cryptographic phases of one sub-query over peer q's
// generation g, which holds genCnt points. Under grid pruning it
// announces candidate cells out of the peer's generation-g directory and
// runs over their padded occupancy; an empty candidate set is decided
// locally with no frames.
func (h *hState) queryGen(sess *pairSession, conn transport.Conn, x []int64, g, genCnt int) (int, error) {
	nCand := genCnt
	msg := transport.NewBuilder().PutUint(hOpQuery).PutUint(uint64(g)).PutUint(uint64(g + 1))
	if h.pruneOn {
		cells, total := spatial.CandidatesSpan(sess.peerDirs, g, g+1, spatial.Bucket(x, h.cellW))
		usePrune := total < genCnt
		if usePrune && total == 0 {
			// No candidate cells in this generation: the index already
			// implies zero neighbours here; nothing to announce.
			return 0, nil
		}
		msg.PutBool(usePrune)
		if usePrune {
			nCand = total
			spatial.EncodeCells(msg, cells)
		}
	}
	if err := transport.SendMsg(conn, msg); err != nil {
		return 0, err
	}
	// MP phase: we are the sender (peer receives masked products under its
	// own key). The packed path draws its zero-sum masks from the
	// handshake-derivable bound that sizes the slot width; the unpacked
	// path keeps the legacy 2^62 magnitude.
	maskBound := new(big.Int).Lsh(big.NewInt(1), 62)
	if h.packing() {
		maskBound = h.packedMaskBound()
	}
	vs := make([]*big.Int, 0, nCand*h.m)
	for i := 0; i < nCand; i++ {
		masks, err := mpc.ZeroSumMasks(h.random, h.m, maskBound)
		if err != nil {
			return 0, err
		}
		vs = append(vs, masks...)
	}
	if h.packing() {
		pk := sess.mpPackPeer
		if err := mpc.SenderGridMultiply(conn, sess.peerPai, x, vs, nCand, h.m, pk, h.random, h.cfg.Pool); err != nil {
			return 0, err
		}
		// Masked products answer the responder's encrypted coordinates:
		// response leg.
		h.ctsDown.Add(int64(pk.Groups(nCand) * h.m))
	} else {
		ys := make([]int64, 0, nCand*h.m)
		for i := 0; i < nCand; i++ {
			ys = append(ys, x...)
		}
		if err := mpc.SenderBatchMultiply(conn, sess.peerPai, ys, vs, h.random, h.cfg.Pool); err != nil {
			return 0, err
		}
		h.ctsDown.Add(int64(nCand * h.m))
	}
	// Comparison phase: we hold the left value Σx², identical for every
	// instance of the query — under "full" packing the grouped uplink
	// collapses the batch to one ciphertext (counted by the engine's
	// Sent hook; unpacked and "slots" uplinks stay one per instance).
	var ownSum int64
	for _, v := range x {
		ownSum += v * v
	}
	count := 0
	if h.cfg.Batching == core.BatchModeBatched {
		vs := make([]int64, nCand)
		for t := range vs {
			vs[t] = ownSum
		}
		ins, err := sess.cmpA.BatchLess(conn, vs)
		if err != nil {
			return 0, err
		}
		for _, in := range ins {
			if in {
				count++
			}
		}
		return count, nil
	}
	for t := 0; t < nCand; t++ {
		in, err := sess.cmpA.Less(conn, ownSum)
		if err != nil {
			return 0, err
		}
		if in {
			count++
		}
	}
	return count, nil
}

// expand is Algorithm 4 with multi-peer counts (the sequential W = 1
// driving pass; W > 1 drives through core.WaveDrive instead).
func (h *hState) expand(point, clusterID int, labels []int) (bool, error) {
	seeds := h.localRegionQuery(point)
	remote, err := h.totalCountOn(0, point)
	if err != nil {
		return false, err
	}
	if len(seeds)+remote < h.cfg.MinPts {
		labels[point] = dbscan.Noise
		return false, nil
	}
	for _, s := range seeds {
		labels[s] = clusterID
	}
	queue := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s != point {
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		result := h.localRegionQuery(cur)
		remote, err := h.totalCountOn(0, cur)
		if err != nil {
			return false, err
		}
		if len(result)+remote < h.cfg.MinPts {
			continue
		}
		for _, r := range result {
			if labels[r] == dbscan.Unclassified || labels[r] == dbscan.Noise {
				if labels[r] == dbscan.Unclassified {
					queue = append(queue, r)
				}
				labels[r] = clusterID
			}
		}
	}
	return true, nil
}

// respond serves the driving party's pass. With W > 1 one responder
// worker loops on each channel of the muxed edge — the driver's wave
// worker t sends on channel t, so each channel's traffic stays strictly
// sequential. The comparison engines and the permutation source are
// stateless per call over the session's locked randomness, so sharing
// them across responder workers changes only which draw lands on which
// query — permutations hide slot assignment, never counts. On a worker
// error every channel of the edge is closed so siblings blocked in Recv
// unwind instead of deadlocking; the root-cause error wins over the
// induced connection-closed ones.
func (h *hState) respond(driver int) error {
	sess := h.sessions[driver]
	chans := h.chans[driver]
	if len(chans) == 1 {
		return h.respondOn(sess, chans[0], driver)
	}
	var closeOnce sync.Once
	failAll := func() {
		closeOnce.Do(func() {
			for _, c := range chans {
				c.Close()
			}
		})
	}
	errs := make([]error, len(chans))
	var wg sync.WaitGroup
	for t := range chans {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			if err := h.respondOn(sess, chans[t], driver); err != nil {
				failAll()
				errs[t] = err
			}
		}(t)
	}
	wg.Wait()
	var closed error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, transport.ErrClosed) {
			if closed == nil {
				closed = err
			}
			continue
		}
		return err
	}
	return closed
}

// respondOn serves queries arriving on one worker channel until the
// driver's done op.
func (h *hState) respondOn(sess *pairSession, conn transport.Conn, driver int) error {
	for {
		r, err := transport.RecvMsg(conn)
		if err != nil {
			return err
		}
		op := r.Uint()
		if r.Err() != nil {
			return r.Err()
		}
		switch op {
		case hOpQuery:
			if err := h.serveQuery(sess, conn, r); err != nil {
				return err
			}
		case hOpDone:
			return nil
		default:
			return fmt.Errorf("unexpected op %d from party %d", op, driver)
		}
	}
}

// serveQuery answers one HDP sub-query over our own (permuted) points of
// the generation span [fromGen, toGen) the driver announced — its cache
// already covers everything outside the span. Under grid pruning the op
// frame carries the candidate cells; we serve their real members padded
// with always-out-of-range dummies to the disclosed stacked counts,
// exactly as core.hdpServeCompare.
func (h *hState) serveQuery(sess *pairSession, conn transport.Conn, r *transport.Reader) error {
	fromGen := int(r.Uint())
	toGen := int(r.Uint())
	if r.Err() != nil {
		return r.Err()
	}
	gens := len(h.ownGenStart)
	if fromGen < h.dead || toGen > gens || fromGen >= toGen {
		return fmt.Errorf("multiparty: query span %d..%d of %d generations (%d dead)", fromGen, toGen, gens, h.dead)
	}
	end := len(h.enc)
	if toGen < gens {
		end = h.ownGenStart[toGen]
	}
	pts := h.enc[h.ownGenStart[fromGen]:end]
	nDummy := 0
	if h.pruneOn {
		usePrune := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if usePrune {
			cells, err := spatial.DecodeCells(r, h.m)
			if err != nil {
				return fmt.Errorf("multiparty: query cells: %w", err)
			}
			members, pad, err := h.ownStack.ResolveSpan(fromGen, toGen, cells)
			if err != nil {
				return fmt.Errorf("multiparty: query cells: %w", err)
			}
			pts = make([][]int64, len(members))
			for i, j := range members {
				pts[i] = h.enc[j]
			}
			nDummy = pad
		}
	}
	total := len(pts) + nDummy
	if total == 0 {
		return nil
	}
	perm := sess.rng.Perm(total)
	xs := make([]int64, 0, total*h.m)
	zero := make([]int64, h.m)
	for _, pi := range perm {
		if pi < len(pts) {
			xs = append(xs, pts[pi]...)
		} else {
			xs = append(xs, zero...)
		}
	}
	var us []*big.Int
	var err error
	if h.packing() {
		pk := sess.mpPackOwn
		us, err = mpc.ReceiverGridMultiply(conn, sess.paiKey, xs, total, h.m, pk, h.random, h.cfg.Pool)
		if err != nil {
			return err
		}
		// Our encrypted coordinates open the MP sub-protocol: request leg.
		h.ctsUp.Add(int64(pk.Groups(total) * h.m))
	} else {
		us, err = mpc.ReceiverBatchMultiply(conn, sess.paiKey, xs, h.random, h.cfg.Pool)
		if err != nil {
			return err
		}
		h.ctsUp.Add(int64(total * h.m))
	}
	js := make([]int64, len(perm))
	for i, pi := range perm {
		if pi >= len(pts) {
			js[i] = 0 // dummy: strict Less is false for every driver operand
			continue
		}
		dot := new(big.Int)
		for k := 0; k < h.m; k++ {
			dot.Add(dot, us[i*h.m+k])
		}
		if !dot.IsInt64() {
			return fmt.Errorf("multiparty: hdp dot product overflow")
		}
		var sq int64
		for _, v := range pts[pi] {
			sq += v * v
		}
		peerSum := sq - 2*dot.Int64()
		j := h.epsSq - peerSum + 1
		if j < 0 {
			j = 0
		}
		if maxV := sess.cmpB.Bound(); j > maxV {
			j = maxV
		}
		js[i] = j
	}
	// The masked Bob reply direction is where "slots" packing bites:
	// ⌈n/S⌉ ciphertexts packed, n unpacked — counted by the engine's
	// Sent hook (YMPP sends no Paillier cts).
	if h.cfg.Batching == core.BatchModeBatched {
		_, err := sess.cmpB.BatchLess(conn, js)
		return err
	}
	for _, j := range js {
		if _, err := sess.cmpB.Less(conn, j); err != nil {
			return err
		}
	}
	return nil
}

// NewLocalMesh builds a full in-process mesh for k parties: mesh[p][q] is
// party p's connection to party q.
func NewLocalMesh(k int) [][]transport.Conn {
	mesh := make([][]transport.Conn, k)
	for p := range mesh {
		mesh[p] = make([]transport.Conn, k)
	}
	for p := 0; p < k; p++ {
		for q := p + 1; q < k; q++ {
			a, b := transport.Pipe()
			mesh[p][q] = a
			mesh[q][p] = b
		}
	}
	return mesh
}
