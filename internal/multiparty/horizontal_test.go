package multiparty

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// runMesh executes all k horizontal parties concurrently.
func runMesh(t *testing.T, cfgs []Config, pointSets [][][]float64) ([]*HorizontalResult, []error) {
	t.Helper()
	k := len(pointSets)
	mesh := NewLocalMesh(k)
	results := make([]*HorizontalResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			party := HorizontalParty{Index: p, K: k, Conns: mesh[p]}
			results[p], errs[p] = RunHorizontal(party, cfgs[p], pointSets[p])
			for q, c := range mesh[p] {
				if q != p {
					c.Close()
				}
			}
		}(p)
	}
	wg.Wait()
	return results, errs
}

func sameCfgs(k int, cfg Config) []Config {
	out := make([]Config, k)
	for i := range out {
		out[i] = cfg
	}
	return out
}

// encodeSet converts float grid points to int64 for the simulation oracle.
func encodeSet(points [][]float64) [][]int64 {
	out := make([][]int64, len(points))
	for i, row := range points {
		r := make([]int64, len(row))
		for j, v := range row {
			r[j] = int64(v)
		}
		out[i] = r
	}
	return out
}

// The k-party oracle: party p's pass equals SimulateHorizontalPass with
// the union of all other parties' points as the peer set (counts are
// additive across peers).
func kPartyOracle(pointSets [][][]float64, epsSq int64, minPts int, p int) ([]int, int) {
	var others [][]int64
	for q, set := range pointSets {
		if q == p {
			continue
		}
		others = append(others, encodeSet(set)...)
	}
	return core.SimulateHorizontalPass(encodeSet(pointSets[p]), others, epsSq, minPts)
}

var threePartyPoints = [][][]float64{
	{{0, 0}, {1, 0}, {0, 1}, {6, 6}},
	{{1, 1}, {2, 1}, {6, 5}, {5, 6}},
	{{1, 2}, {2, 2}, {6, 7}, {3, 4}},
}

func TestThreePartyHorizontalMatchesOracle(t *testing.T) {
	cfg := Config{
		Eps: 2, MinPts: 3, MaxCoord: 7,
		PaillierBits: 256, RSABits: 256,
		Engine: compare.EngineMasked,
	}
	results, errs := runMesh(t, sameCfgs(3, cfg), threePartyPoints)
	for p, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", p, err)
		}
	}
	epsSq := int64(4)
	for p, r := range results {
		want, wantK := kPartyOracle(threePartyPoints, epsSq, cfg.MinPts, p)
		if !metrics.ExactMatch(r.Labels, want) {
			t.Errorf("party %d labels %v != oracle %v", p, r.Labels, want)
		}
		if r.NumClusters != wantK {
			t.Errorf("party %d clusters = %d, want %d", p, r.NumClusters, wantK)
		}
		if r.RegionQueries == 0 {
			t.Errorf("party %d recorded no region queries", p)
		}
	}
}

func TestThreePartyHorizontalYMPP(t *testing.T) {
	cfg := Config{
		Eps: 2, MinPts: 3, MaxCoord: 7,
		PaillierBits: 256, RSABits: 256,
		Engine: compare.EngineYMPP,
	}
	results, errs := runMesh(t, sameCfgs(3, cfg), threePartyPoints)
	for p, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", p, err)
		}
	}
	for p, r := range results {
		want, _ := kPartyOracle(threePartyPoints, 4, cfg.MinPts, p)
		if !metrics.ExactMatch(r.Labels, want) {
			t.Errorf("party %d diverges under YMPP", p)
		}
	}
}

// With k = 2 the mesh protocol must agree with core's two-party protocol.
func TestTwoPartyMeshMatchesCoreHorizontal(t *testing.T) {
	pointSets := [][][]float64{
		{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {6, 6}},
		{{1, 2}, {2, 1}, {2, 2}, {6, 5}, {5, 6}, {6, 7}},
	}
	cfg := Config{
		Eps: 2, MinPts: 3, MaxCoord: 7,
		PaillierBits: 256, RSABits: 256,
		Engine: compare.EngineMasked,
	}
	results, errs := runMesh(t, sameCfgs(2, cfg), pointSets)
	for p, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", p, err)
		}
	}

	coreCfg := core.Config{
		Eps: cfg.Eps, MinPts: cfg.MinPts, MaxCoord: cfg.MaxCoord,
		PaillierBits: 256, RSABits: 256, Engine: compare.EngineMasked, Seed: 9,
	}
	var ra, rb *core.Result
	err := transport.Run2(
		func(c transport.Conn) error {
			r, err := core.HorizontalAlice(c, coreCfg, pointSets[0])
			ra = r
			return err
		},
		func(c transport.Conn) error {
			r, err := core.HorizontalBob(c, coreCfg, pointSets[1])
			rb = r
			return err
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.ExactMatch(results[0].Labels, ra.Labels) {
		t.Error("mesh party 0 diverges from core HorizontalAlice")
	}
	if !metrics.ExactMatch(results[1].Labels, rb.Labels) {
		t.Error("mesh party 1 diverges from core HorizontalBob")
	}
}

func TestHorizontalMeshHandshakeMismatch(t *testing.T) {
	cfgs := sameCfgs(3, Config{
		Eps: 2, MinPts: 3, MaxCoord: 7,
		PaillierBits: 256, RSABits: 256,
		Engine: compare.EngineMasked,
	})
	cfgs[2].MinPts = 4
	_, errs := runMesh(t, cfgs, threePartyPoints)
	found := false
	for _, err := range errs {
		if errors.Is(err, ErrHandshake) {
			found = true
		}
	}
	if !found {
		t.Errorf("no party reported ErrHandshake: %v", errs)
	}
}

func TestHorizontalPartyValidation(t *testing.T) {
	cfg := Config{Eps: 2, MinPts: 3, MaxCoord: 7, PaillierBits: 256, RSABits: 256, Engine: compare.EngineMasked}
	if _, err := RunHorizontal(HorizontalParty{Index: 0, K: 1, Conns: []transport.Conn{nil}}, cfg, [][]float64{{1, 1}}); err == nil {
		t.Error("k=1 accepted")
	}
	mesh := NewLocalMesh(2)
	if _, err := RunHorizontal(HorizontalParty{Index: 0, K: 2, Conns: mesh[0][:1]}, cfg, [][]float64{{1, 1}}); err == nil {
		t.Error("short conns accepted")
	}
	if _, err := RunHorizontal(HorizontalParty{Index: 0, K: 2, Conns: mesh[0]}, cfg, nil); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := RunHorizontal(HorizontalParty{Index: 0, K: 2, Conns: mesh[0]}, cfg, [][]float64{{1, 1}, {1}}); err == nil {
		t.Error("ragged points accepted")
	}
	for _, row := range mesh {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
}

func TestNewLocalMeshTopology(t *testing.T) {
	mesh := NewLocalMesh(3)
	for p := 0; p < 3; p++ {
		for q := 0; q < 3; q++ {
			if p == q {
				if mesh[p][q] != nil {
					t.Errorf("self connection at %d", p)
				}
				continue
			}
			if err := mesh[p][q].Send([]byte{byte(10*p + q)}); err != nil {
				t.Fatal(err)
			}
			got, err := mesh[q][p].Recv()
			if err != nil || got[0] != byte(10*p+q) {
				t.Fatalf("edge %d->%d broken", p, q)
			}
		}
	}
}
