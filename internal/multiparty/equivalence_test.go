package multiparty

import (
	"testing"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/metrics"
)

// TestRingBatchedMatchesSequential mirrors the core equivalence harness
// for the k-party ring: the batched round structure (one circulation per
// lockstep neighborhood) must produce exactly the labels and pair-decision
// counts of the sequential structure (one circulation per pair).
func TestRingBatchedMatchesSequential(t *testing.T) {
	points := gridData(t, 18, 3, 11)
	for _, k := range []int{2, 3} {
		seqCfg := testCfg(compare.EngineMasked)
		seqCfg.Batching = core.BatchModeSequential
		seqResults, err := runRing(t, seqCfg, splitColumns(points, k))
		if err != nil {
			t.Fatalf("k=%d sequential: %v", k, err)
		}
		batCfg := testCfg(compare.EngineMasked)
		batCfg.Batching = core.BatchModeBatched
		batResults, err := runRing(t, batCfg, splitColumns(points, k))
		if err != nil {
			t.Fatalf("k=%d batched: %v", k, err)
		}
		for p := range seqResults {
			if !metrics.ExactMatch(batResults[p].Labels, seqResults[p].Labels) {
				t.Errorf("k=%d party %d labels diverge: batched %v, sequential %v",
					k, p, batResults[p].Labels, seqResults[p].Labels)
			}
			if batResults[p].PairDecisions != seqResults[p].PairDecisions {
				t.Errorf("k=%d party %d pair decisions: batched %d, sequential %d",
					k, p, batResults[p].PairDecisions, seqResults[p].PairDecisions)
			}
		}
	}
}

// TestRingPrunedMatchesExhaustive mirrors the core pruning harness for the
// k-party ring: grid pruning must reproduce the exhaustive labels and pair
// decisions exactly (pruned pairs still count — the index implies them),
// while disclosing the index circulation it performed.
func TestRingPrunedMatchesExhaustive(t *testing.T) {
	points := gridData(t, 18, 3, 11)
	for _, k := range []int{2, 3} {
		offCfg := testCfg(compare.EngineMasked)
		offCfg.Pruning = core.PruneOff
		offResults, err := runRing(t, offCfg, splitColumns(points, k))
		if err != nil {
			t.Fatalf("k=%d exhaustive: %v", k, err)
		}
		onCfg := testCfg(compare.EngineMasked)
		onCfg.Pruning = core.PruneGrid
		onResults, err := runRing(t, onCfg, splitColumns(points, k))
		if err != nil {
			t.Fatalf("k=%d pruned: %v", k, err)
		}
		for p := range offResults {
			if !metrics.ExactMatch(onResults[p].Labels, offResults[p].Labels) {
				t.Errorf("k=%d party %d labels diverge: pruned %v, exhaustive %v",
					k, p, onResults[p].Labels, offResults[p].Labels)
			}
			if onResults[p].PairDecisions != offResults[p].PairDecisions {
				t.Errorf("k=%d party %d pair decisions: pruned %d, exhaustive %d",
					k, p, onResults[p].PairDecisions, offResults[p].PairDecisions)
			}
			if offResults[p].IndexCellCoords != 0 {
				t.Errorf("k=%d party %d exhaustive run disclosed index coords", k, p)
			}
			if onResults[p].IndexCellCoords == 0 {
				t.Errorf("k=%d party %d pruned run recorded no index disclosure", k, p)
			}
		}
	}
}

// TestHorizontalMeshPrunedMatchesExhaustive does the same for the k-party
// horizontal mesh, under both round structures.
func TestHorizontalMeshPrunedMatchesExhaustive(t *testing.T) {
	for _, batching := range []core.BatchMode{core.BatchModeBatched, core.BatchModeSequential} {
		offCfg := testCfg(compare.EngineMasked)
		offCfg.Batching = batching
		offCfg.Pruning = core.PruneOff
		offResults, offErrs := runMesh(t, sameCfgs(3, offCfg), threePartyPoints)
		for p, err := range offErrs {
			if err != nil {
				t.Fatalf("%s party %d exhaustive: %v", batching, p, err)
			}
		}
		onCfg := testCfg(compare.EngineMasked)
		onCfg.Batching = batching
		onCfg.Pruning = core.PruneGrid
		onResults, onErrs := runMesh(t, sameCfgs(3, onCfg), threePartyPoints)
		for p, err := range onErrs {
			if err != nil {
				t.Fatalf("%s party %d pruned: %v", batching, p, err)
			}
		}
		for p := range offResults {
			if !metrics.ExactMatch(onResults[p].Labels, offResults[p].Labels) {
				t.Errorf("%s party %d labels diverge: pruned %v, exhaustive %v",
					batching, p, onResults[p].Labels, offResults[p].Labels)
			}
			if onResults[p].RegionQueries != offResults[p].RegionQueries {
				t.Errorf("%s party %d region queries: pruned %d, exhaustive %d",
					batching, p, onResults[p].RegionQueries, offResults[p].RegionQueries)
			}
		}
	}
}

// TestHorizontalMeshBatchedMatchesSequential does the same for the k-party
// horizontal mesh.
func TestHorizontalMeshBatchedMatchesSequential(t *testing.T) {
	seqCfg := testCfg(compare.EngineMasked)
	seqCfg.Batching = core.BatchModeSequential
	seqResults, seqErrs := runMesh(t, sameCfgs(3, seqCfg), threePartyPoints)
	for p, err := range seqErrs {
		if err != nil {
			t.Fatalf("party %d sequential: %v", p, err)
		}
	}
	batCfg := testCfg(compare.EngineMasked)
	batCfg.Batching = core.BatchModeBatched
	batResults, batErrs := runMesh(t, sameCfgs(3, batCfg), threePartyPoints)
	for p, err := range batErrs {
		if err != nil {
			t.Fatalf("party %d batched: %v", p, err)
		}
	}
	for p := range seqResults {
		if !metrics.ExactMatch(batResults[p].Labels, seqResults[p].Labels) {
			t.Errorf("party %d labels diverge: batched %v, sequential %v",
				p, batResults[p].Labels, seqResults[p].Labels)
		}
	}
}
