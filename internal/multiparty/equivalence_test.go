package multiparty

import (
	"testing"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/metrics"
)

// TestRingBatchedMatchesSequential mirrors the core equivalence harness
// for the k-party ring: the batched round structure (one circulation per
// lockstep neighborhood) must produce exactly the labels and pair-decision
// counts of the sequential structure (one circulation per pair).
func TestRingBatchedMatchesSequential(t *testing.T) {
	points := gridData(t, 18, 3, 11)
	for _, k := range []int{2, 3} {
		seqCfg := testCfg(compare.EngineMasked)
		seqCfg.Batching = core.BatchModeSequential
		seqResults, err := runRing(t, seqCfg, splitColumns(points, k))
		if err != nil {
			t.Fatalf("k=%d sequential: %v", k, err)
		}
		batCfg := testCfg(compare.EngineMasked)
		batCfg.Batching = core.BatchModeBatched
		batResults, err := runRing(t, batCfg, splitColumns(points, k))
		if err != nil {
			t.Fatalf("k=%d batched: %v", k, err)
		}
		for p := range seqResults {
			if !metrics.ExactMatch(batResults[p].Labels, seqResults[p].Labels) {
				t.Errorf("k=%d party %d labels diverge: batched %v, sequential %v",
					k, p, batResults[p].Labels, seqResults[p].Labels)
			}
			if batResults[p].PairDecisions != seqResults[p].PairDecisions {
				t.Errorf("k=%d party %d pair decisions: batched %d, sequential %d",
					k, p, batResults[p].PairDecisions, seqResults[p].PairDecisions)
			}
		}
	}
}

// TestHorizontalMeshBatchedMatchesSequential does the same for the k-party
// horizontal mesh.
func TestHorizontalMeshBatchedMatchesSequential(t *testing.T) {
	seqCfg := testCfg(compare.EngineMasked)
	seqCfg.Batching = core.BatchModeSequential
	seqResults, seqErrs := runMesh(t, sameCfgs(3, seqCfg), threePartyPoints)
	for p, err := range seqErrs {
		if err != nil {
			t.Fatalf("party %d sequential: %v", p, err)
		}
	}
	batCfg := testCfg(compare.EngineMasked)
	batCfg.Batching = core.BatchModeBatched
	batResults, batErrs := runMesh(t, sameCfgs(3, batCfg), threePartyPoints)
	for p, err := range batErrs {
		if err != nil {
			t.Fatalf("party %d batched: %v", p, err)
		}
	}
	for p := range seqResults {
		if !metrics.ExactMatch(batResults[p].Labels, seqResults[p].Labels) {
			t.Errorf("party %d labels diverge: batched %v, sequential %v",
				p, batResults[p].Labels, seqResults[p].Labels)
		}
	}
}
