// Streaming sessions for the multiparty extensions. NewRingSession and
// NewMeshSession split establishment (handshake, keys, index
// circulation) from runs exactly like core.Session, and add Append: all
// k parties call the same method sequence concurrently — Run/Append are
// ring- (or mesh-) synchronous group operations, the k-party analogue of
// the two-party control channel. Across runs each session keeps the
// cross-run comparison caches of the two-party stack: the ring reuses
// pair bits (public to every party, so all caches agree and the seeded
// lockstep drivers stay in lock step), the mesh reuses per-(point, peer)
// region-count prefixes with generation-scoped suffix queries.
package multiparty

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/spatial"
	"repro/internal/transport"
)

// RingSession is one party's half of a long-lived ring (k-party
// vertical) session.
type RingSession struct {
	st       *state
	cellRows [][]int64
	cache    *core.PairCache
	cached   atomic.Int64
	runs     int
	batches  []int // record count of each append generation (establishment is generation 0)
	dead     int   // generations expired out of the sliding window
}

// NewRingSession establishes the ring session; every party must
// construct its session concurrently with a consistent ring.
func NewRingSession(party Party, cfg Config, attrs [][]float64) (*RingSession, error) {
	st, cellRows, err := newRingState(party, cfg, attrs)
	if err != nil {
		return nil, err
	}
	return &RingSession{st: st, cellRows: cellRows, cache: core.NewPairCache(), batches: []int{len(st.enc)}}, nil
}

// Runs reports the completed Run calls.
func (rs *RingSession) Runs() int { return rs.runs }

// Append absorbs one batch of appended records: every party calls Append
// concurrently with its own column slice of the same new records (counts
// are verified ring-wide). Under pruning the new rows' cell coordinates
// circulate exactly like the establishment matrix, extending every
// party's copy identically; decided-pair bits for existing records stay
// valid (distances are immutable), so the next Run pays only for pairs
// involving new records.
func (rs *RingSession) Append(attrs [][]float64) error {
	st := rs.st
	ownDim := len(st.enc[0])
	for i, row := range attrs {
		if len(row) != ownDim {
			return fmt.Errorf("multiparty: appended record %d has %d attributes, want %d", i, len(row), ownDim)
		}
	}
	codec, err := st.codec()
	if err != nil {
		return err
	}
	enc, err := codec.EncodePoints(attrs)
	if err != nil {
		return err
	}
	for i, row := range enc {
		for j, v := range row {
			if v > st.cfg.MaxCoord {
				return fmt.Errorf("multiparty: appended record %d attribute %d encodes to %d > MaxCoord %d", i, j, v, st.cfg.MaxCoord)
			}
		}
	}
	if err := st.circulateCount(len(enc)); err != nil {
		return err
	}
	if st.pruneOn() && len(enc) > 0 {
		w := spatial.CellWidth(st.epsSq)
		own := make([][]int64, len(enc))
		for i, row := range enc {
			own[i] = spatial.Bucket(row, w)
		}
		rows, err := st.circulateCells(own)
		if err != nil {
			return err
		}
		rs.cellRows = append(rs.cellRows, rows...)
	}
	st.enc = append(st.enc, enc...)
	rs.batches = append(rs.batches, len(enc))
	return nil
}

// Expire slides the ring window: the oldest gens append generations —
// and every record they hold — leave on all parties at once. Every
// party must call Expire concurrently with the same argument; a
// spatial.TombstoneDelta circulates like an append count (two laps,
// coordinator first) so the ring agrees on exactly which generations
// die before anyone mutates state. Locally the expired records are
// compacted out of the attribute matrix and the pruning cell rows, and
// the cross-run pair cache drops every bit touching an expired record
// while remapping the survivors — all parties hold identical caches, so
// the seeded lockstep drivers stay in lock step across expiries.
func (rs *RingSession) Expire(gens int) error {
	st := rs.st
	live := len(rs.batches) - rs.dead
	if gens < 1 || gens > live {
		return fmt.Errorf("multiparty: expire %d of %d live generations", gens, live)
	}
	if err := st.circulateExpire(rs.dead, gens, live); err != nil {
		return err
	}
	rows := 0
	for g := rs.dead; g < rs.dead+gens; g++ {
		rows += rs.batches[g]
		rs.batches[g] = 0
	}
	st.enc = st.enc[rows:]
	if rs.cellRows != nil {
		rs.cellRows = rs.cellRows[rows:]
	}
	rs.cache.Expire(rows)
	rs.dead += gens
	return nil
}

// circulateExpire verifies ring-wide agreement on an expiry: lap 1
// carries the coordinator's tombstone for everyone to check against its
// own window position and Expire argument, lap 2 releases the ring, so
// no party compacts state the others are not also retiring.
func (st *state) circulateExpire(dead, gens, live int) error {
	prev, next := st.prevs[0], st.nexts[0]
	td := spatial.TombstoneDelta{From: dead, N: gens}
	check := func(r *transport.Reader) error {
		got, err := spatial.DecodeTombstoneDelta(r, dead, live)
		if err != nil {
			return fmt.Errorf("multiparty: expire circulation: %w", err)
		}
		if got.N != gens {
			return fmt.Errorf("multiparty: expire disagreement: %d vs %d generations", gens, got.N)
		}
		return nil
	}
	if st.isCoordinator() {
		if err := transport.SendMsg(next, td.Encode(transport.NewBuilder())); err != nil {
			return fmt.Errorf("multiparty: expire send: %w", err)
		}
		r, err := transport.RecvMsg(prev)
		if err != nil {
			return fmt.Errorf("multiparty: expire return: %w", err)
		}
		if err := check(r); err != nil {
			return err
		}
		// Lap 2: release the ring.
		if err := transport.SendMsg(next, td.Encode(transport.NewBuilder())); err != nil {
			return err
		}
		_, err = transport.RecvMsg(prev)
		return err
	}
	r, err := transport.RecvMsg(prev)
	if err != nil {
		return fmt.Errorf("multiparty: expire recv: %w", err)
	}
	if err := check(r); err != nil {
		return err
	}
	if err := transport.SendMsg(next, td.Encode(transport.NewBuilder())); err != nil {
		return err
	}
	// Lap 2.
	r2, err := transport.RecvMsg(prev)
	if err != nil {
		return err
	}
	if err := check(r2); err != nil {
		return fmt.Errorf("multiparty: expire release mismatch: %w", err)
	}
	return transport.SendMsg(next, td.Encode(transport.NewBuilder()))
}

// Retract removes individual live records from the ring window:
// records are shared rows under vertical partitioning, so every party
// must call Retract concurrently with the same strictly ascending list
// of live record indices. A spatial.PointTombstone circulates like an
// expiry tombstone (two laps, coordinator first) and each party checks
// the circulated ids id-for-id against its own argument before anyone
// mutates state — no party compacts rows the others are keeping.
// Locally the retracted rows are compacted out of the attribute matrix,
// the pruning cell rows, and the per-generation window counts
// (surviving indices renumber immediately), and the cross-run pair
// cache drops every bit touching a retracted record while remapping the
// survivors identically on all parties, so the seeded lockstep drivers
// stay in lock step across retractions.
func (rs *RingSession) Retract(ids []int) error {
	st := rs.st
	if len(ids) == 0 {
		return fmt.Errorf("multiparty: retract needs at least one record")
	}
	if err := spatial.ValidateRetractIDs(ids, len(st.enc)); err != nil {
		return err
	}
	if err := st.circulateRetract(ids, len(st.enc)); err != nil {
		return err
	}
	// Map each id to its live generation using the pre-retraction window
	// counts, then apply the decrements afterwards (ids are numbered
	// before any of them are removed).
	dec := make(map[int]int)
	g, upto := rs.dead, 0
	if g < len(rs.batches) {
		upto = rs.batches[g]
	}
	for _, id := range ids {
		for id >= upto && g < len(rs.batches)-1 {
			g++
			upto += rs.batches[g]
		}
		dec[g]++
	}
	for gen, d := range dec {
		rs.batches[gen] -= d
	}
	next := 0
	enc := st.enc[:0]
	var cells [][]int64
	if rs.cellRows != nil {
		cells = rs.cellRows[:0]
	}
	for i, row := range st.enc {
		if next < len(ids) && ids[next] == i {
			next++
			continue
		}
		enc = append(enc, row)
		if rs.cellRows != nil {
			cells = append(cells, rs.cellRows[i])
		}
	}
	st.enc = enc
	if rs.cellRows != nil {
		rs.cellRows = cells
	}
	rs.cache.Retract(ids)
	return nil
}

// circulateRetract verifies ring-wide agreement on a retraction: lap 1
// carries the coordinator's point tombstone for every party to check
// id-for-id against its own Retract argument, lap 2 releases the ring.
func (st *state) circulateRetract(ids []int, total int) error {
	prev, next := st.prevs[0], st.nexts[0]
	pt := spatial.PointTombstone{IDs: ids}
	check := func(r *transport.Reader) error {
		got, err := spatial.DecodePointTombstone(r, total)
		if err != nil {
			return fmt.Errorf("multiparty: retract circulation: %w", err)
		}
		if len(got.IDs) != len(ids) {
			return fmt.Errorf("multiparty: retract disagreement: %d vs %d records (records are shared)", len(ids), len(got.IDs))
		}
		for i := range ids {
			if got.IDs[i] != ids[i] {
				return fmt.Errorf("multiparty: retract disagreement at position %d: id %d vs %d", i, ids[i], got.IDs[i])
			}
		}
		return nil
	}
	if st.isCoordinator() {
		if err := transport.SendMsg(next, pt.Encode(transport.NewBuilder())); err != nil {
			return fmt.Errorf("multiparty: retract send: %w", err)
		}
		r, err := transport.RecvMsg(prev)
		if err != nil {
			return fmt.Errorf("multiparty: retract return: %w", err)
		}
		if err := check(r); err != nil {
			return err
		}
		// Lap 2: release the ring.
		if err := transport.SendMsg(next, pt.Encode(transport.NewBuilder())); err != nil {
			return err
		}
		_, err = transport.RecvMsg(prev)
		return err
	}
	r, err := transport.RecvMsg(prev)
	if err != nil {
		return fmt.Errorf("multiparty: retract recv: %w", err)
	}
	if err := check(r); err != nil {
		return err
	}
	if err := transport.SendMsg(next, pt.Encode(transport.NewBuilder())); err != nil {
		return err
	}
	// Lap 2.
	r2, err := transport.RecvMsg(prev)
	if err != nil {
		return err
	}
	if err := check(r2); err != nil {
		return fmt.Errorf("multiparty: retract release mismatch: %w", err)
	}
	return transport.SendMsg(next, pt.Encode(transport.NewBuilder()))
}

// Run executes one lockstep clustering over the session state, seeded
// with the cross-run pair cache. Result.PairDecisions covers this run
// only (cached pairs included — the decision-level budget convention);
// Result.CachedPairs reports the cache's contribution.
func (rs *RingSession) Run() (*Result, error) {
	st := rs.st
	cfg := st.cfg
	startPairs := st.pairCount.Load()
	startUp := st.ctsUp.Load()
	startDown := st.ctsDown.Load()
	rs.cached.Store(0)
	onPruned := func([2]int) { st.pairCount.Add(1) }
	onCached := func(pr [2]int, in bool) {
		st.pairCount.Add(1)
		rs.cached.Add(1)
	}

	var labels []int
	var clusters int
	var err error
	switch {
	case cfg.Parallel > 1:
		labels, clusters, err = core.LockstepClusterParallelCached(len(st.enc), cfg.MinPts, cfg.Parallel,
			rs.cache, onCached,
			core.PrunedLocalDecider(rs.cellRows, onPruned), st.pairLEBatchOn)
	case cfg.Batching == core.BatchModeBatched:
		oracle := func(pairs [][2]int) ([]bool, error) { return st.pairLEBatchOn(0, pairs) }
		if rs.cellRows != nil {
			oracle = core.PrunedBatchOracle(rs.cellRows, onPruned, oracle)
		}
		labels, clusters, err = core.LockstepClusterBatchCached(len(st.enc), cfg.MinPts, rs.cache, onCached, oracle)
	default:
		oracle := st.pairLE
		if rs.cellRows != nil {
			oracle = core.PrunedPairOracle(rs.cellRows, onPruned, oracle)
		}
		labels, clusters, err = core.LockstepClusterCached(len(st.enc), cfg.MinPts, rs.cache, onCached, oracle)
	}
	if err != nil {
		return nil, err
	}
	rs.runs++
	up := st.ctsUp.Load() - startUp
	down := st.ctsDown.Load() - startDown
	return &Result{
		Labels:              labels,
		NumClusters:         clusters,
		PairDecisions:       int(st.pairCount.Load() - startPairs),
		CachedPairs:         int(rs.cached.Load()),
		IndexCellCoords:     st.idxCoords,
		CiphertextsSent:     up + down,
		CiphertextsUplink:   up,
		CiphertextsDownlink: down,
	}, nil
}

// circulateCount verifies ring-wide agreement on an appended record
// count: lap 1 carries the coordinator's count for everyone to check,
// lap 2 acknowledges, so no party proceeds into the cell circulation (or
// grows its matrix) on a mismatched batch.
func (st *state) circulateCount(n int) error {
	prev, next := st.prevs[0], st.nexts[0]
	if st.isCoordinator() {
		if err := transport.SendMsg(next, transport.NewBuilder().PutUint(uint64(n))); err != nil {
			return fmt.Errorf("multiparty: append count send: %w", err)
		}
		r, err := transport.RecvMsg(prev)
		if err != nil {
			return fmt.Errorf("multiparty: append count return: %w", err)
		}
		got := int(r.Uint())
		if err := r.Err(); err != nil {
			return err
		}
		if got != n {
			return fmt.Errorf("multiparty: append count disagreement: %d vs %d", n, got)
		}
		// Lap 2: release the ring.
		if err := transport.SendMsg(next, transport.NewBuilder().PutUint(uint64(n))); err != nil {
			return err
		}
		_, err = transport.RecvMsg(prev)
		return err
	}
	r, err := transport.RecvMsg(prev)
	if err != nil {
		return fmt.Errorf("multiparty: append count recv: %w", err)
	}
	got := int(r.Uint())
	if err := r.Err(); err != nil {
		return err
	}
	if got != n {
		return fmt.Errorf("multiparty: append count disagreement: %d vs %d (records are shared)", n, got)
	}
	if err := transport.SendMsg(next, transport.NewBuilder().PutUint(uint64(n))); err != nil {
		return err
	}
	// Lap 2.
	r2, err := transport.RecvMsg(prev)
	if err != nil {
		return err
	}
	if int(r2.Uint()) != n || r2.Err() != nil {
		return fmt.Errorf("multiparty: append count release mismatch")
	}
	return transport.SendMsg(next, transport.NewBuilder().PutUint(uint64(n)))
}
