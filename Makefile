# Build, verify, and benchmark targets. `make verify` is the full gate
# (format, vet, build, race-enabled tests); `make bench` records the E11
# end-to-end measurements to BENCH_E11.json so the performance trajectory
# is tracked PR over PR.

GO ?= go

.PHONY: all build test race vet fmt verify bench fuzz clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

verify: fmt vet build race

# Quick-mode bench: small n, both batching modes, JSON rows.
bench:
	$(GO) run ./cmd/ppdbscan bench -quick -out BENCH_E11.json
	@cat BENCH_E11.json

# Short fuzz pass over the wire and batch-frame codecs.
fuzz:
	$(GO) test ./internal/transport -run NONE -fuzz FuzzBatchFrameCodec -fuzztime 10s
	$(GO) test ./internal/transport -run NONE -fuzz FuzzReaderNeverPanics -fuzztime 10s

clean:
	rm -f BENCH_E11.json
