# Build, verify, and benchmark targets. `make verify` is the full gate
# (format, vet, build, race-enabled tests); `make bench` records the E11
# end-to-end measurements to BENCH_E11.json, the E14 grid-pruning
# ablation to BENCH_E14.json, the E15 parallelism ablation to
# BENCH_E15.json, the E16 session-concurrency sweep to BENCH_E16.json,
# and the E17 streaming append sweep to BENCH_E17.json, the E18
# sliding-window expiry sweep to BENCH_E18.json, the E19 retraction
# sweep to BENCH_E19.json, the E20 plaintext-packing ablation to
# BENCH_E20.json, the E21 packed-uplink ablation to BENCH_E21.json, and
# the E22 shard-scaling sweep to BENCH_E22.json so the performance
# trajectory is tracked PR over PR. Every bench file is stamped with the
# commit hash and Go version.

GO ?= go

.PHONY: all build test race vet fmt verify bench bench-e17 bench-e18 bench-e19 bench-e20 bench-e21 bench-e22 fuzz clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

verify: fmt vet build race

# Quick-mode bench: small n, both batching, pruning, and packing modes
# plus the worker-width and session-concurrency sweeps, JSON rows.
bench:
	$(GO) run ./cmd/ppdbscan bench -quick -out BENCH_E11.json
	@cat BENCH_E11.json
	$(GO) run ./cmd/ppdbscan bench -suite e14 -quick -out BENCH_E14.json
	@cat BENCH_E14.json
	$(GO) run ./cmd/ppdbscan bench -suite e15 -quick -out BENCH_E15.json
	@cat BENCH_E15.json
	$(GO) run ./cmd/ppdbscan bench -suite e16 -quick -out BENCH_E16.json
	@cat BENCH_E16.json
	$(GO) run ./cmd/ppdbscan bench -suite e17 -quick -out BENCH_E17.json
	@cat BENCH_E17.json
	$(GO) run ./cmd/ppdbscan bench -suite e18 -quick -out BENCH_E18.json
	@cat BENCH_E18.json
	$(GO) run ./cmd/ppdbscan bench -suite e19 -quick -out BENCH_E19.json
	@cat BENCH_E19.json
	$(GO) run ./cmd/ppdbscan bench -suite e20 -quick -out BENCH_E20.json
	@cat BENCH_E20.json
	$(GO) run ./cmd/ppdbscan bench -suite e21 -quick -out BENCH_E21.json
	@cat BENCH_E21.json
	$(GO) run ./cmd/ppdbscan bench -suite e22 -quick -out BENCH_E22.json
	@cat BENCH_E22.json

# Streaming append sweep only (BENCH_E17.json).
bench-e17:
	$(GO) run ./cmd/ppdbscan bench -suite e17 -quick -out BENCH_E17.json
	@cat BENCH_E17.json

# Sliding-window expiry sweep only (BENCH_E18.json).
bench-e18:
	$(GO) run ./cmd/ppdbscan bench -suite e18 -quick -out BENCH_E18.json
	@cat BENCH_E18.json

# Retraction sweep only (BENCH_E19.json).
bench-e19:
	$(GO) run ./cmd/ppdbscan bench -suite e19 -quick -out BENCH_E19.json
	@cat BENCH_E19.json

# Plaintext-packing ablation only (BENCH_E20.json). Full-size rows: the
# packing gain is the headline number, so this one records the n=48
# workload rather than the quick smoke.
bench-e20:
	$(GO) run ./cmd/ppdbscan bench -suite e20 -out BENCH_E20.json
	@cat BENCH_E20.json

# Packed-uplink ablation only (BENCH_E21.json). Full-size rows like
# bench-e20: the uplink reduction is the headline number.
bench-e21:
	$(GO) run ./cmd/ppdbscan bench -suite e21 -out BENCH_E21.json
	@cat BENCH_E21.json

# Shard-scaling sweep only (BENCH_E22.json): dispatcher + N single-slot
# shards, aggregate runs/sec strictly increasing 1→2→4.
bench-e22:
	$(GO) run ./cmd/ppdbscan bench -suite e22 -quick -out BENCH_E22.json
	@cat BENCH_E22.json

# Short fuzz pass over the wire, batch-frame, mux-frame, and spatial-grid
# codecs.
fuzz:
	$(GO) test ./internal/transport -run NONE -fuzz FuzzBatchFrameCodec -fuzztime 10s
	$(GO) test ./internal/transport -run NONE -fuzz FuzzReaderNeverPanics -fuzztime 10s
	$(GO) test ./internal/transport -run NONE -fuzz FuzzMuxFrame -fuzztime 10s
	$(GO) test ./internal/spatial -run NONE -fuzz FuzzGridBucket -fuzztime 10s
	$(GO) test ./internal/spatial -run NONE -fuzz FuzzGridDelta -fuzztime 10s
	$(GO) test ./internal/spatial -run NONE -fuzz FuzzTombstoneDelta -fuzztime 10s
	$(GO) test ./internal/spatial -run NONE -fuzz FuzzPointTombstone -fuzztime 10s
	$(GO) test ./internal/encoding -run NONE -fuzz FuzzSlotPack -fuzztime 10s
	$(GO) test ./internal/compare -run NONE -fuzz FuzzPackedUplink -fuzztime 10s

clean:
	rm -f BENCH_E11.json BENCH_E14.json BENCH_E15.json BENCH_E16.json BENCH_E17.json BENCH_E18.json BENCH_E19.json BENCH_E20.json BENCH_E21.json BENCH_E22.json
