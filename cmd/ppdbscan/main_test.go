package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "points.csv")
	content := "1,2\n# comment\n3.5, 4.5\n\n5,6\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, err := readCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if pts[1][0] != 3.5 || pts[1][1] != 4.5 {
		t.Errorf("pts[1] = %v", pts[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := readCSV(""); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := readCSV("/nonexistent/file.csv"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.csv")
	os.WriteFile(path, []byte("1,notanumber\n"), 0o644)
	if _, err := readCSV(path); err == nil {
		t.Error("malformed number accepted")
	}
}

func TestMakeDataset(t *testing.T) {
	for _, kind := range []string{"blobs", "moons", "rings", "bridged"} {
		d, err := makeDataset(kind, 50, 1)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
		}
		if len(d.Points) < 50 {
			t.Errorf("%s: only %d points", kind, len(d.Points))
		}
	}
	if _, err := makeDataset("bogus", 10, 1); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestProtocolFlagsConfig(t *testing.T) {
	p := &protocolFlags{mode: "horizontal", eps: 4, minPts: 3, grid: 64,
		engine: "masked", selection: "scan", seed: 1}
	cfg, err := p.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxCoord != 63 || cfg.Eps != 4 || cfg.MinPts != 3 {
		t.Errorf("config = %+v", cfg)
	}
	p.engine = "bogus"
	if _, err := p.config(); err == nil {
		t.Error("bogus engine accepted")
	}
	p.engine = "masked"
	p.selection = "bogus"
	if _, err := p.config(); err == nil {
		t.Error("bogus selection accepted")
	}
}

func TestGenWritesCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "gen.csv")
	if err := cmdGen([]string{"-kind", "moons", "-n", "40", "-grid", "32", "-out", out}); err != nil {
		t.Fatal(err)
	}
	pts, err := readCSV(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 40 {
		t.Fatalf("generated %d points, want 40", len(pts))
	}
	for _, p := range pts {
		for _, v := range p {
			if v < 0 || v > 31 {
				t.Fatalf("point %v outside grid", p)
			}
		}
	}
}

func TestCmdExperimentsUnknownID(t *testing.T) {
	if err := cmdExperiments([]string{"-id", "e99", "-quick"}); err == nil {
		t.Error("unknown experiment id accepted")
	}
}
