package main

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadCSV: arbitrary file contents must parse or error, never panic,
// and successful parses must yield rectangular-or-ragged float rows with
// no NaN-from-garbage surprises.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("# comment\n\n1.5, -2.5\n")
	f.Add(",,,\n")
	f.Add("1e308,1e-308\n")
	f.Add("nan,inf\n")

	f.Fuzz(func(t *testing.T, content string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.csv")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Skip()
		}
		pts, err := readCSV(path)
		if err != nil {
			return
		}
		for _, p := range pts {
			if len(p) == 0 {
				t.Fatal("parsed empty point")
			}
		}
	})
}
