// Command ppdbscan runs privacy-preserving distributed DBSCAN clustering:
// the paper's two-party protocols over in-process pipes (demo mode) or
// real TCP between two processes (alice/bob modes for one-shot runs,
// serve/client for long-lived sessions that amortize keygen, handshake,
// and the grid-index exchange across many clustering requests), plus the
// full experiment suite and a synthetic dataset generator. `serve` is a
// concurrent multi-session server: it accepts any number of clients,
// gives each its own session goroutine and traffic meter, shares one
// bounded crypto pool across them (-workers), survives individual client
// failures, and drains gracefully on SIGINT; `loadgen` drives C
// concurrent clients × R runs each against it.
//
// Usage:
//
//	ppdbscan demo        -mode horizontal|enhanced|vertical|arbitrary [flags]
//	ppdbscan alice       -mode horizontal|enhanced|vertical -listen :9000 -data a.csv [flags]
//	ppdbscan bob         -mode horizontal|enhanced|vertical -connect host:9000 -data b.csv [flags]
//	ppdbscan serve       -mode horizontal|enhanced|vertical -listen :9000 -data b.csv [-name shard-a] [-workers N|auto [-colocated K]] [-drain 30s] [-max-sessions N] [-idle-timeout 2m] [flags]
//	ppdbscan dispatch    -listen :9100 -shards host:9001,host:9002 [-shed N] [-health 2s] [-drain 30s]
//	ppdbscan client      -mode horizontal|enhanced|vertical -connect host:9000 -data a.csv -runs 3 [-session-key K] [-appends K -append-batch B [-window]] [-retract N] [flags]
//	ppdbscan loadgen     -mode horizontal|enhanced|vertical -connect host:9000 -data a.csv -clients 4 -runs 2 [-session-key P -shed-retries N] [-appends K -append-batch B [-window]] [-retract N] [flags]
//	ppdbscan gen         -kind blobs|moons|rings|bridged -n 200 -out points.csv [flags]
//	ppdbscan experiments -id all|e1..e22 [-quick] [-seed N]
//	ppdbscan bench       [-suite e11|e14|e15|e16|e17|e18|e19|e20|e21|e22] [-quick] [-seed N] [-out BENCH_E11.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dispatch"
	"repro/internal/experiments"
	"repro/internal/partition"
	"repro/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "alice", "bob":
		err = cmdParty(os.Args[1], os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "dispatch":
		err = cmdDispatch(os.Args[2:])
	case "client":
		err = cmdClient(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ppdbscan: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppdbscan:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `ppdbscan — privacy-preserving distributed DBSCAN (Liu et al., EDBT 2012 / TDP 2013)

commands:
  demo         run a protocol between two in-process parties on synthetic data
  alice, bob   run one party of a one-shot protocol over TCP
  serve        concurrent multi-session server: accept any number of clients,
               one session each, over a shared bounded crypto pool; SIGINT drains
  dispatch     serving-tier front door: consistent-hash sessions across N serve
               shards, splice the byte stream through, shed load before keygen,
               health-check the fleet; SIGINT drains and prints a fleet rollup
  client       drive a long-lived session: N clustering runs over one key exchange
  loadgen      drive C concurrent client sessions x R runs each against a server
               or dispatcher (per-shard breakdown in the summary)
  gen          generate a synthetic dataset CSV
  experiments  regenerate the paper's evaluation tables (e1..e22 or all)
  bench        run a benchmark suite (-suite e11|e14|e15|e16|e17|e18|e19|e20|e21|e22) and write JSON measurements
  verify       audit every protocol family against its plaintext oracle

E14 is the grid-pruning ablation: -pruning grid (default) buckets each
party's data into an Eps-width candidate index so secure region queries
touch only neighboring cells; -pruning off keeps the paper's exhaustive
candidate sets for A/B comparison. E15 is the parallelism ablation:
-parallel W > 1 multiplexes W worker channels over the connection and
dispatches independent secure region queries concurrently. E17 is the
streaming ablation: client/loadgen -appends K -append-batch B feed a
live session new points between runs; re-clustering reuses the session's
cross-run comparison cache and exchanges only index deltas. E18 is the
sliding-window ablation: adding -window makes every appended batch also
expire the oldest live generation (tombstoned in both indices), so the
session clusters a fixed-width window at incremental cost. E19 is the
retraction ablation: client/loadgen -retract N withdraw the N oldest
live points after the runs and re-cluster; masked slots keep their
padded index footprint, so the peer never learns which cells shrank.
E20 is the plaintext-packing ablation: -packing slots (default) packs S
fixed-point values per Paillier plaintext (slot-shifted encoding), so
the masked-product and comparison-reply frames carry ~S× fewer
ciphertexts; -packing off keeps one value per ciphertext for A/B
comparison. Labels and leakage are identical either way. E21 is the
packed-uplink ablation: -packing full additionally packs the masked
comparison uplink (grouped or derived per batch, with a per-instance
fallback so full never costs more than slots), splitting every
ciphertext count into uplink and downlink legs. E22 is the shard-scaling
sweep: the dispatcher fans C concurrent sessions across N serve shards
(consistent hashing on the session key, load-based shedding at the
admission preamble), measuring aggregate runs/sec and per-run latency
at fixed total work as the shard count grows.

run 'ppdbscan <command> -h' for flags.
`)
}

// protocolFlags carries the options shared by demo/alice/bob/serve/client.
type protocolFlags struct {
	mode      string
	eps       float64
	minPts    int
	grid      int
	engine    string
	selection string
	batching  string
	packing   string
	pruning   string
	parallel  int
	seed      int64
}

func addProtocolFlags(fs *flag.FlagSet) *protocolFlags {
	p := &protocolFlags{}
	fs.StringVar(&p.mode, "mode", "horizontal", "protocol: horizontal|enhanced|vertical|arbitrary")
	fs.Float64Var(&p.eps, "eps", 4, "DBSCAN Eps in grid units")
	fs.IntVar(&p.minPts, "minpts", 4, "DBSCAN MinPts (self-inclusive)")
	fs.IntVar(&p.grid, "grid", 64, "integer grid size (MaxCoord = grid-1)")
	fs.StringVar(&p.engine, "engine", "masked", "secure comparison engine: ympp|masked")
	fs.StringVar(&p.selection, "selection", "scan", "§5 selection strategy: scan|quickselect")
	fs.StringVar(&p.batching, "batching", "batched", "comparison round structure: batched|sequential")
	fs.StringVar(&p.packing, "packing", "slots", "plaintext encoding: slots (slot-packed ciphertext frames)|full (slots plus the packed comparison uplink)|off (one value per ciphertext)")
	fs.StringVar(&p.pruning, "pruning", "grid", "candidate-set structure: grid (Eps-grid candidate index)|off (exhaustive)")
	fs.IntVar(&p.parallel, "parallel", 1, "query scheduler worker width W (1 = sequential; >1 multiplexes W channels)")
	fs.Int64Var(&p.seed, "seed", 1, "seed for datasets and permutations")
	return p
}

func (p *protocolFlags) config() (core.Config, error) {
	engine, err := compare.ParseEngine(p.engine)
	if err != nil {
		return core.Config{}, err
	}
	selection, err := core.ParseSelection(p.selection)
	if err != nil {
		return core.Config{}, err
	}
	batching := core.BatchMode("")
	if p.batching != "" { // empty defers to core's default (batched)
		batching, err = core.ParseBatchMode(p.batching)
		if err != nil {
			return core.Config{}, err
		}
	}
	packing := core.PackMode("")
	if p.packing != "" { // empty defers to core's default (slots when batched)
		packing, err = core.ParsePackMode(p.packing)
		if err != nil {
			return core.Config{}, err
		}
	}
	pruning := core.PruneMode("")
	if p.pruning != "" { // empty defers to core's default (grid)
		pruning, err = core.ParsePruneMode(p.pruning)
		if err != nil {
			return core.Config{}, err
		}
	}
	return core.Config{
		Eps:       p.eps,
		MinPts:    p.minPts,
		MaxCoord:  int64(p.grid - 1),
		Engine:    engine,
		Selection: selection,
		Batching:  batching,
		Packing:   packing,
		Pruning:   pruning,
		Parallel:  p.parallel,
		Seed:      p.seed,
		// Demo/CLI runs favour responsiveness over key strength.
		PaillierBits: 512,
		RSABits:      512,
	}, nil
}

func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	p := addProtocolFlags(fs)
	n := fs.Int("n", 48, "total points")
	kind := fs.String("kind", "blobs", "dataset: blobs|moons|rings|bridged")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := p.config()
	if err != nil {
		return err
	}
	d, err := makeDataset(*kind, *n, p.seed)
	if err != nil {
		return err
	}
	// -eps is interpreted in grid units: after quantization the data lives
	// on the [0, grid-1]² integer lattice.
	q, _ := dataset.Quantize(d, p.grid)

	fmt.Printf("dataset %s quantized to %dx%d grid, eps=%.1f minPts=%d engine=%s\n",
		q.Name, p.grid, p.grid, cfg.Eps, cfg.MinPts, cfg.Engine)

	ca, cb := transport.Pipe()
	ma, mb := transport.NewMeter(ca), transport.NewMeter(cb)
	var ra, rb *core.Result

	switch p.mode {
	case "horizontal", "enhanced":
		split, err := partition.HorizontalRandom(q.Points, 0.5, p.seed)
		if err != nil {
			return err
		}
		aliceFn, bobFn := core.HorizontalAlice, core.HorizontalBob
		if p.mode == "enhanced" {
			aliceFn, bobFn = core.EnhancedHorizontalAlice, core.EnhancedHorizontalBob
		}
		err = transport.RunPair(ma, mb,
			func(transport.Conn) error {
				r, err := aliceFn(ma, cfg, split.Alice)
				ra = r
				return err
			},
			func(transport.Conn) error {
				r, err := bobFn(mb, cfg, split.Bob)
				rb = r
				return err
			},
		)
		if err != nil {
			return err
		}
		fmt.Printf("alice: %d points, %d clusters, leakage %v\n", len(split.Alice), ra.NumClusters, ra.Leakage)
		fmt.Printf("bob:   %d points, %d clusters, leakage %v\n", len(split.Bob), rb.NumClusters, rb.Leakage)
	case "vertical":
		split, err := partition.Vertical(q.Points, 1)
		if err != nil {
			return err
		}
		err = transport.RunPair(ma, mb,
			func(transport.Conn) error {
				r, err := core.VerticalAlice(ma, cfg, split.Alice)
				ra = r
				return err
			},
			func(transport.Conn) error {
				r, err := core.VerticalBob(mb, cfg, split.Bob)
				rb = r
				return err
			},
		)
		if err != nil {
			return err
		}
		fmt.Printf("both parties: %d records, %d clusters, leakage %v\n", len(q.Points), ra.NumClusters, ra.Leakage)
	case "arbitrary":
		split, err := partition.ArbitraryRandom(q.Points, 0.5, p.seed)
		if err != nil {
			return err
		}
		err = transport.RunPair(ma, mb,
			func(transport.Conn) error {
				r, err := core.ArbitraryAlice(ma, cfg, split.Alice, split.Owners)
				ra = r
				return err
			},
			func(transport.Conn) error {
				r, err := core.ArbitraryBob(mb, cfg, split.Bob, split.Owners)
				rb = r
				return err
			},
		)
		if err != nil {
			return err
		}
		fmt.Printf("both parties: %d records, %d clusters, leakage %v\n", len(q.Points), ra.NumClusters, ra.Leakage)
	default:
		return fmt.Errorf("unknown mode %q", p.mode)
	}

	fmt.Printf("traffic: %d bytes in %d messages\n",
		ma.Stats().BytesSent+mb.Stats().BytesSent, ma.Stats().MessagesSent+mb.Stats().MessagesSent)
	fmt.Print(transport.FormatTagStats(transport.Merge(ma, mb)))
	return nil
}

func cmdParty(role string, args []string) error {
	fs := flag.NewFlagSet(role, flag.ExitOnError)
	p := addProtocolFlags(fs)
	listen := fs.String("listen", "", "address to listen on (alice)")
	connect := fs.String("connect", "", "address to dial (bob)")
	dataPath := fs.String("data", "", "CSV file with this party's points (one point per line)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := p.config()
	if err != nil {
		return err
	}
	points, err := readCSV(*dataPath)
	if err != nil {
		return err
	}

	var conn transport.Conn
	if role == "alice" {
		addr := *listen
		if addr == "" {
			addr = ":9000"
		}
		fmt.Printf("alice: listening on %s\n", addr)
		c, _, err := transport.Listen(addr)
		if err != nil {
			return err
		}
		conn = c
	} else {
		if *connect == "" {
			return fmt.Errorf("bob requires -connect host:port")
		}
		c, err := transport.Dial(*connect)
		if err != nil {
			return err
		}
		conn = c
	}
	defer conn.Close()
	meter := transport.NewMeter(conn)

	var res *core.Result
	switch p.mode {
	case "horizontal":
		if role == "alice" {
			res, err = core.HorizontalAlice(meter, cfg, points)
		} else {
			res, err = core.HorizontalBob(meter, cfg, points)
		}
	case "enhanced":
		if role == "alice" {
			res, err = core.EnhancedHorizontalAlice(meter, cfg, points)
		} else {
			res, err = core.EnhancedHorizontalBob(meter, cfg, points)
		}
	case "vertical":
		if role == "alice" {
			res, err = core.VerticalAlice(meter, cfg, points)
		} else {
			res, err = core.VerticalBob(meter, cfg, points)
		}
	default:
		return fmt.Errorf("mode %q not supported over TCP (use demo)", p.mode)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d labels, %d clusters, leakage %v\n", role, len(res.Labels), res.NumClusters, res.Leakage)
	fmt.Printf("traffic: sent %d bytes, received %d bytes\n", meter.Stats().BytesSent, meter.Stats().BytesRecv)
	for i, l := range res.Labels {
		fmt.Printf("%d,%d\n", i, l)
	}
	return nil
}

// sessionByMode builds the long-lived session for serve/client.
func sessionByMode(mode string, conn transport.Conn, cfg core.Config, role core.Role, points [][]float64) (*core.Session, error) {
	switch mode {
	case "horizontal":
		return core.NewHorizontalSession(conn, cfg, role, points)
	case "enhanced":
		return core.NewEnhancedHorizontalSession(conn, cfg, role, points)
	case "vertical":
		return core.NewVerticalSession(conn, cfg, role, points)
	}
	return nil, fmt.Errorf("mode %q not supported for sessions (use demo for arbitrary)", mode)
}

// cmdClient drives a long-lived session as the initiating party
// (RoleAlice): -runs clustering requests over one key exchange + index.
func cmdClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	p := addProtocolFlags(fs)
	connect := fs.String("connect", "", "address of the serving party")
	dataPath := fs.String("data", "", "CSV file with this party's points (one point per line)")
	runs := fs.Int("runs", 1, "clustering runs to request over the session")
	sessionKey := fs.String("session-key", "client", "session key greeted to the serving tier; the consistent-hash routing input behind a dispatcher")
	appends := fs.Int("appends", 0, "streaming appends after the initial runs, each followed by a re-clustering run (horizontal modes)")
	appendBatch := fs.Int("append-batch", 0, "points per appended batch, taken from the tail of -data")
	window := fs.Bool("window", false, "slide a fixed-width window: every appended batch also expires the oldest live generation")
	retract := fs.Int("retract", 0, "after the runs and appends, retract this many of the oldest live points and re-cluster")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("client requires -connect host:port")
	}
	if *retract < 0 {
		return fmt.Errorf("client requires -retract ≥ 0")
	}
	if *runs < 1 {
		return fmt.Errorf("client requires -runs ≥ 1")
	}
	cfg, err := p.config()
	if err != nil {
		return err
	}
	points, err := readCSV(*dataPath)
	if err != nil {
		return err
	}
	initial, batches, err := splitAppends(points, *appends, *appendBatch)
	if err != nil {
		return err
	}
	points = initial
	conn, err := transport.Dial(*connect)
	if err != nil {
		return err
	}
	defer conn.Close()
	shard, err := dispatch.Hello(conn, *sessionKey)
	if err != nil {
		return fmt.Errorf("admission: %w", err)
	}
	meter := transport.NewMeter(conn)
	sess, err := sessionByMode(p.mode, meter, cfg, core.RoleAlice, points)
	if err != nil {
		return err
	}
	fmt.Printf("client: session established on shard %s, setup leakage %v\n", shard, sess.SetupLeakage())
	var last *core.Result
	run := func() error {
		res, err := sess.Run()
		if err != nil {
			return err
		}
		last = res
		fmt.Printf("client: run %d (%d appends): %d labels, %d clusters, %d secure / %d cached cmps, run leakage %v\n",
			sess.Runs(), sess.Appends(), len(res.Labels), res.NumClusters,
			res.SecureComparisons, res.CachedComparisons, res.Leakage)
		return nil
	}
	for i := 0; i < *runs; i++ {
		if err := run(); err != nil {
			return err
		}
	}
	for i, batch := range batches {
		if *window {
			if err := sess.WindowAppend(batch); err != nil {
				return fmt.Errorf("window append %d: %w", i+1, err)
			}
			fmt.Printf("client: slid window %d (%d points in, oldest generation expired; %d expiries), total setup leakage now %v\n",
				i+1, len(batch), sess.Expires(), sess.SetupLeakage())
		} else {
			if err := sess.Append(batch); err != nil {
				return fmt.Errorf("append %d: %w", i+1, err)
			}
			fmt.Printf("client: appended batch %d (%d points), total setup leakage now %v\n", i+1, len(batch), sess.SetupLeakage())
		}
		if err := run(); err != nil {
			return err
		}
	}
	if *retract > 0 {
		ids := make([]int, *retract)
		for i := range ids {
			ids[i] = i
		}
		if err := sess.Retract(ids); err != nil {
			return fmt.Errorf("retract: %w", err)
		}
		fmt.Printf("client: retracted %d points (%d retractions), total setup leakage now %v\n",
			*retract, sess.Retracts(), sess.SetupLeakage())
		if err := run(); err != nil {
			return err
		}
	}
	if err := sess.Close(); err != nil {
		return err
	}
	fmt.Printf("client: closed after %d runs, %d appends; traffic sent %d bytes, received %d bytes\n",
		sess.Runs(), sess.Appends(), meter.Stats().BytesSent, meter.Stats().BytesRecv)
	for i, l := range last.Labels {
		fmt.Printf("%d,%d\n", i, l)
	}
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "blobs", "dataset: blobs|moons|rings|bridged")
	n := fs.Int("n", 200, "number of points")
	seed := fs.Int64("seed", 1, "generator seed")
	grid := fs.Int("grid", 64, "quantization grid (0 = raw floats)")
	out := fs.String("out", "", "output CSV path (default stdout)")
	labels := fs.Bool("labels", false, "append the ground-truth label column")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := makeDataset(*kind, *n, *seed)
	if err != nil {
		return err
	}
	if *grid > 1 {
		d, _ = dataset.Quantize(d, *grid)
	}
	if !*labels {
		d.Labels = nil
	}
	if *out != "" {
		return dataset.WriteCSVFile(*out, d)
	}
	return dataset.WriteCSV(os.Stdout, d)
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	id := fs.String("id", "all", "experiment id (e1..e22) or all")
	quick := fs.Bool("quick", false, "smaller sweeps")
	seed := fs.Int64("seed", 1, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return experiments.Run(*id, os.Stdout, experiments.Options{Quick: *quick, Seed: *seed})
}

// benchFile is the envelope every bench suite writes: the measurement
// rows stamped with the commit hash and Go version that produced them,
// so the perf-trajectory artifacts are attributable PR over PR.
type benchFile struct {
	Suite     string `json:"suite"`
	Commit    string `json:"commit"`
	GoVersion string `json:"go_version"`
	Rows      any    `json:"rows"`
}

// gitCommit resolves the commit that built this binary: the embedded VCS
// stamp when present (installed binaries), else the working tree's HEAD
// (`go run` from the repo, which embeds no stamp), else "unknown" (export
// tarballs). The embedded stamp wins so a binary run from some unrelated
// git repository is not mis-attributed to that repository's HEAD.
func gitCommit() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				if len(kv.Value) > 12 {
					return kv.Value[:12]
				}
				return kv.Value
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// cmdBench measures a benchmark suite and writes the rows as JSON — the
// perf-trajectory artifacts `make bench` stores in BENCH_E11.json (E11
// end-to-end workload, both batching modes), BENCH_E14.json (grid-pruning
// ablation), BENCH_E15.json (parallelism ablation: worker-width sweep
// over a simulated WAN), and BENCH_E16.json (session-concurrency sweep:
// C concurrent sessions on one shared-pool server). Every file is
// stamped with the commit hash and Go version that produced it.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "smaller workload")
	seed := fs.Int64("seed", 1, "bench seed")
	suite := fs.String("suite", "e11", "benchmark suite: e11|e14|e15|e16|e17|e18|e19|e20|e21|e22")
	out := fs.String("out", "", "output JSON path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := experiments.Options{Quick: *quick, Seed: *seed}
	var rows any
	var err error
	switch *suite {
	case "e11":
		rows, err = experiments.BenchE11(opt)
	case "e14":
		rows, err = experiments.BenchE14(opt)
	case "e15":
		rows, err = experiments.BenchE15(opt)
	case "e16":
		rows, err = experiments.BenchE16(opt)
	case "e17":
		rows, err = experiments.BenchE17(opt)
	case "e18":
		rows, err = experiments.BenchE18(opt)
	case "e19":
		rows, err = experiments.BenchE19(opt)
	case "e20":
		rows, err = experiments.BenchE20(opt)
	case "e21":
		rows, err = experiments.BenchE21(opt)
	case "e22":
		rows, err = experiments.BenchE22(opt)
	default:
		return fmt.Errorf("unknown bench suite %q (want e11, e14, e15, e16, e17, e18, e19, e20, e21, or e22)", *suite)
	}
	if err != nil {
		return fmt.Errorf("bench suite %s failed: %w", *suite, err)
	}
	blob, err := json.MarshalIndent(benchFile{
		Suite:     *suite,
		Commit:    gitCommit(),
		GoVersion: runtime.Version(),
		Rows:      rows,
	}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		return writeFileAtomic(*out, blob)
	}
	_, err = os.Stdout.Write(blob)
	return err
}

// writeFileAtomic writes blob to a temp file in the target's directory
// and renames it into place, so the bench artifact on disk is always
// either the complete new measurement or the untouched previous one —
// a failed run never leaves a torn JSON behind for the perf-trajectory
// tooling to choke on.
func writeFileAtomic(path string, blob []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func makeDataset(kind string, n int, seed int64) (dataset.Dataset, error) {
	switch kind {
	case "blobs":
		return dataset.WithNoise(dataset.Blobs(n, 3, 0.35, seed), n/10, seed+1), nil
	case "moons":
		return dataset.Moons(n, 0.05, seed), nil
	case "rings":
		return dataset.Rings(n, 0.04, seed), nil
	case "bridged":
		return dataset.Bridged(n, seed), nil
	}
	return dataset.Dataset{}, fmt.Errorf("unknown dataset kind %q", kind)
}

// readCSV loads one point per line, comma-separated float coordinates.
func readCSV(path string) ([][]float64, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -data file")
	}
	d, err := dataset.ReadCSVFile(path, false)
	if err != nil {
		return nil, err
	}
	return d.Points, nil
}
