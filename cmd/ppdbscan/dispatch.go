package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/dispatch"
	"repro/internal/transport"
)

// cmdDispatch runs the serving tier's front door: a dispatcher that
// consistent-hashes every inbound session key onto one of N serve
// backends, splices the byte stream through, sheds load before keygen
// when the fleet is saturated, health-checks the shards, and on SIGINT
// drains and prints one fleet-wide rollup of every shard's session and
// traffic counters.
func cmdDispatch(args []string) error {
	fs := flag.NewFlagSet("dispatch", flag.ExitOnError)
	listen := fs.String("listen", ":9100", "address to listen on")
	shards := fs.String("shards", "", "comma-separated backend addresses (host:port,host:port,...)")
	shed := fs.Int("shed", 0, "per-shard in-flight session bound; excess sessions are refused before keygen (0 = unlimited)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
	health := fs.Duration("health", 2*time.Second, "shard health-check period (0 = disabled)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown wait for spliced sessions before exiting")
	keepalive := fs.Duration("keepalive", 3*time.Minute, "TCP keepalive probe period on client connections (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var addrs []string
	for _, a := range strings.Split(*shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("dispatch requires -shards host:port[,host:port...]")
	}
	if *shed < 0 {
		return fmt.Errorf("dispatch requires -shed ≥ 0")
	}
	interval := *health
	if interval == 0 {
		interval = -1 // Options: negative disables the loop
	}
	d, err := dispatch.New(dispatch.Options{
		Shards:         addrs,
		Shed:           *shed,
		Vnodes:         *vnodes,
		HealthInterval: interval,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	lis, err := transport.NewListener(*listen)
	if err != nil {
		return err
	}
	defer lis.Close()
	lis.SetConnOptions(0, *keepalive)
	d.Start()
	fmt.Printf("dispatch: listening on %s, %d shards %v (shed bound %d, health every %v)\n",
		lis.Addr(), len(addrs), addrs, *shed, *health)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; ok {
			fmt.Println("dispatch: shutdown requested; shedding new sessions, draining spliced ones")
			lis.Close()
		}
	}()

	var wg sync.WaitGroup
	for {
		conn, err := lis.Accept()
		if errors.Is(err, transport.ErrClosed) {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dispatch: accept: %v\n", err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		wg.Add(1)
		go func(conn transport.Conn) {
			defer wg.Done()
			// A shed or a dead client is that connection's problem; the
			// accept loop keeps serving.
			if err := d.HandleConn(conn); err != nil {
				fmt.Fprintf(os.Stderr, "dispatch: %v\n", err)
			}
		}(conn)
	}

	merged, rows, graceful := d.Drain(*drain)
	wg.Wait()
	if !graceful {
		fmt.Println("dispatch: drain timed out with sessions still spliced")
	}
	loads := d.Loads()
	names := make([]string, 0, len(loads))
	for n := range loads {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		l := loads[n]
		state := "up"
		if l.Dead {
			state = "down"
		}
		fmt.Printf("dispatch: shard %s (%s): %d admitted, %d shed, %d bytes up / %d bytes down\n",
			n, state, l.Admitted, l.Sheds, l.BytesUp, l.BytesDn)
	}
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "dispatch: shard %s: stats pull failed: %v\n", r.Name, r.Err)
		}
	}
	fmt.Printf("dispatch: fleet total %d sessions (%d closed, %d failed, %d live), %d runs\n",
		merged.Opened, merged.Closed, merged.Failed, merged.Live, merged.Runs)
	fmt.Printf("dispatch: fleet traffic sent %d bytes, received %d bytes in %d messages\n",
		merged.Traffic.BytesSent, merged.Traffic.BytesRecv, merged.Traffic.Messages())
	return nil
}
