package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// The concurrent serving stack. `ppdbscan serve` is one server process
// holding many independent privacy-preserving clustering sessions at
// once: an accept loop hands every inbound client its own session
// goroutine, session id, and traffic Meter (core.SessionManager), while
// all sessions share one bounded crypto worker pool (-workers) so N
// concurrent clients contend for the CPU instead of oversubscribing it.
// One client's disconnect or failed handshake is logged and served
// around — the process keeps accepting. SIGINT starts a graceful drain:
// no new accepts, in-flight runs finish (up to -drain, then their
// connections are force-closed), and the aggregate meter summary prints.
//
// `ppdbscan loadgen` is the matching load driver: C concurrent client
// sessions × R clustering runs each against one serve process, reporting
// wall clock, aggregate bytes, runs/sec, and p50/p95 per-run latency —
// the CLI face of experiment E16's session-concurrency sweep.

// cmdServe runs the concurrent session server as the serving party
// (RoleBob): every accepted client gets its own session (keygen,
// handshake, and grid-index exchange at accept time), and all sessions
// share the process-wide crypto pool.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	p := addProtocolFlags(fs)
	listen := fs.String("listen", ":9000", "address to listen on")
	dataPath := fs.String("data", "", "CSV file with this party's points (one point per line)")
	workers := fs.Int("workers", 0, "shared crypto pool size across all sessions (0 = GOMAXPROCS)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown wait for in-flight sessions before force-closing")
	maxSessions := fs.Int("max-sessions", 0, "admission bound on concurrently live sessions (0 = unlimited); excess connections are refused before the handshake")
	idle := fs.Duration("idle-timeout", 0, "per-session read deadline: a client silent this long mid-session is dropped (0 = off)")
	keepalive := fs.Duration("keepalive", 3*time.Minute, "TCP keepalive probe period on session connections (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("serve requires -workers ≥ 0")
	}
	if *maxSessions < 0 {
		return fmt.Errorf("serve requires -max-sessions ≥ 0")
	}
	cfg, err := p.config()
	if err != nil {
		return err
	}
	points, err := readCSV(*dataPath)
	if err != nil {
		return err
	}
	lis, err := transport.NewListener(*listen)
	if err != nil {
		return err
	}
	defer lis.Close()
	lis.SetConnOptions(*idle, *keepalive)
	mgr := core.NewSessionManager(*workers)
	mgr.SetMaxSessions(*maxSessions)
	cfg = mgr.Configure(cfg)
	fmt.Printf("serve: listening on %s (mode %s, parallel %d, crypto pool %d workers, max sessions %d, idle timeout %v)\n",
		lis.Addr(), p.mode, cfg.Parallel, mgr.Pool().Workers(), *maxSessions, *idle)

	// SIGINT/SIGTERM close the listener; the accept loop falls through to
	// the drain.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; ok {
			fmt.Println("serve: shutdown requested; refusing new sessions, draining in-flight runs")
			lis.Close()
		}
	}()

	var wg sync.WaitGroup
	for {
		conn, err := lis.Accept()
		if errors.Is(err, transport.ErrClosed) {
			break
		}
		if err != nil {
			// A failed accept is one peer's problem, not the server's; the
			// pause keeps a persistent failure (e.g. fd exhaustion) from
			// busy-spinning the loop.
			fmt.Fprintf(os.Stderr, "serve: accept: %v\n", err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		wg.Add(1)
		go func(conn transport.Conn) {
			defer wg.Done()
			serveSession(mgr, conn, p.mode, cfg, points)
		}(conn)
	}
	if !mgr.Drain(*drain) {
		fmt.Println("serve: drain timed out; force-closed the remaining sessions")
	}
	wg.Wait()
	snap := mgr.Snapshot()
	fmt.Printf("serve: shut down after %d sessions (%d closed, %d failed), %d runs total\n",
		snap.Opened, snap.Closed, snap.Failed, snap.Runs)
	fmt.Printf("serve: aggregate traffic sent %d bytes, received %d bytes in %d messages\n",
		snap.Traffic.BytesSent, snap.Traffic.BytesRecv, snap.Traffic.Messages())
	return nil
}

// serveSession runs one client's whole session lifecycle on its own
// goroutine. Errors — a refused registration, a failed handshake, a
// mid-run disconnect — end this session only; the accept loop never
// sees them.
func serveSession(mgr *core.SessionManager, conn transport.Conn, mode string, cfg core.Config, points [][]float64) {
	defer conn.Close()
	h, err := mgr.Begin(conn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: refusing connection: %v\n", err)
		return
	}
	sess, err := sessionByMode(mode, h.Meter(), cfg, core.RoleBob, points)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: session %d: establishment failed: %v\n", h.ID(), err)
		h.End(err)
		return
	}
	h.Activate()
	fmt.Printf("serve: session %d established, setup leakage %v\n", h.ID(), sess.SetupLeakage())
	for {
		res, err := sess.Run()
		if errors.Is(err, core.ErrSessionClosed) {
			fmt.Printf("serve: session %d closed after %d runs, %d appends\n", h.ID(), sess.Runs(), sess.Appends())
			h.End(nil)
			return
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: session %d: run failed: %v\n", h.ID(), err)
			h.End(err)
			return
		}
		h.RunDone()
		fmt.Printf("serve: session %d run %d (%d appends): %d labels, %d clusters, %d cached cmps, run leakage %v\n",
			h.ID(), sess.Runs(), sess.Appends(), len(res.Labels), res.NumClusters, res.CachedComparisons, res.Leakage)
	}
}

// latencyRecorder collects per-run wall-clock latencies across the
// concurrent loadgen clients.
type latencyRecorder struct {
	mu   sync.Mutex
	durs []time.Duration
}

func (l *latencyRecorder) add(d time.Duration) {
	l.mu.Lock()
	l.durs = append(l.durs, d)
	l.mu.Unlock()
}

func (l *latencyRecorder) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.durs)
}

// percentile returns the nearest-rank p-th percentile of the recorded
// latencies (0 with none recorded).
func (l *latencyRecorder) percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration{}, l.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// ctsTally accumulates the client-side Paillier ciphertext counts
// across every loadgen run, split by direction: uplink is the request
// leg (the comparison uplink "full" packing shrinks), downlink the
// response leg (the masked replies "slots" packing shrinks).
type ctsTally struct {
	up, down atomic.Int64
}

func (t *ctsTally) add(res *core.Result) {
	t.up.Add(res.CiphertextsUplink)
	t.down.Add(res.CiphertextsDownlink)
}

// cmdLoadgen drives C concurrent client sessions × R runs each against
// one serve process and reports aggregate throughput plus per-run
// latency percentiles.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	p := addProtocolFlags(fs)
	connect := fs.String("connect", "", "address of the serving party")
	dataPath := fs.String("data", "", "CSV file with the client-side points (one point per line)")
	clients := fs.Int("clients", 2, "concurrent client sessions C")
	runs := fs.Int("runs", 1, "clustering runs per client R")
	appends := fs.Int("appends", 0, "streaming appends per client after the initial runs (horizontal modes; the server side appends nothing)")
	appendBatch := fs.Int("append-batch", 0, "points per appended batch, taken from the tail of -data")
	window := fs.Bool("window", false, "slide a fixed-width window: every appended batch also expires the oldest live generation")
	retract := fs.Int("retract", 0, "after the runs and appends, each client retracts this many of its oldest live points and re-clusters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("loadgen requires -connect host:port")
	}
	if *clients < 1 || *runs < 1 {
		return fmt.Errorf("loadgen requires -clients ≥ 1 and -runs ≥ 1")
	}
	if *retract < 0 {
		return fmt.Errorf("loadgen requires -retract ≥ 0")
	}
	cfg, err := p.config()
	if err != nil {
		return err
	}
	points, err := readCSV(*dataPath)
	if err != nil {
		return err
	}
	initial, batches, err := splitAppends(points, *appends, *appendBatch)
	if err != nil {
		return err
	}

	var group transport.MeterGroup
	var runsDone atomic.Int64
	var lat latencyRecorder
	var cts ctsTally
	errs := make([]error, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = driveClient(&group, *connect, p.mode, cfg, initial, batches, *runs, *window, *retract, &runsDone, &lat, &cts)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	failed := 0
	for c, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "loadgen: client %d: %v\n", c, err)
		}
	}
	agg := group.Stats()
	done := runsDone.Load()
	extraRuns := len(batches)
	if *retract > 0 {
		extraRuns++
	}
	totalRuns := int64(*clients) * int64(*runs+extraRuns)
	fmt.Printf("loadgen: %d clients × %d runs + %d appends: %d/%d runs ok, %d clients failed\n",
		*clients, *runs, len(batches), done, totalRuns, failed)
	fmt.Printf("loadgen: wall %v, aggregate %d bytes in %d messages, %.2f runs/sec\n",
		wall.Round(time.Millisecond), agg.Total(), agg.Messages(),
		float64(done)/max(wall.Seconds(), 1e-9))
	fmt.Printf("loadgen: client paillier ciphertexts: %d uplink, %d downlink\n",
		cts.up.Load(), cts.down.Load())
	if lat.count() > 0 {
		fmt.Printf("loadgen: per-run latency p50 %v, p95 %v over %d runs\n",
			lat.percentile(50).Round(time.Millisecond), lat.percentile(95).Round(time.Millisecond), lat.count())
	}
	if failed > 0 {
		return fmt.Errorf("loadgen: %d of %d clients failed", failed, *clients)
	}
	return nil
}

// driveClient runs one loadgen client: dial, establish a session over
// the initial points, R runs, then one append+run (or, with window set,
// window-slide+run) per batch, an optional retract+run, close.
func driveClient(group *transport.MeterGroup, connect, mode string, cfg core.Config, initial [][]float64, batches [][][]float64, runs int, window bool, retract int, runsDone *atomic.Int64, lat *latencyRecorder, cts *ctsTally) error {
	conn, err := transport.Dial(connect)
	if err != nil {
		return err
	}
	defer conn.Close()
	meter := group.New(conn)
	sess, err := sessionByMode(mode, meter, cfg, core.RoleAlice, initial)
	if err != nil {
		return fmt.Errorf("session establishment: %w", err)
	}
	timedRun := func() error {
		runStart := time.Now()
		res, err := sess.Run()
		if err != nil {
			return err
		}
		cts.add(res)
		lat.add(time.Since(runStart))
		runsDone.Add(1)
		return nil
	}
	for i := 0; i < runs; i++ {
		if err := timedRun(); err != nil {
			return fmt.Errorf("run %d: %w", i+1, err)
		}
	}
	for i, batch := range batches {
		if window {
			if err := sess.WindowAppend(batch); err != nil {
				return fmt.Errorf("window append %d: %w", i+1, err)
			}
		} else if err := sess.Append(batch); err != nil {
			return fmt.Errorf("append %d: %w", i+1, err)
		}
		if err := timedRun(); err != nil {
			return fmt.Errorf("post-append run %d: %w", i+1, err)
		}
	}
	if retract > 0 {
		ids := make([]int, retract)
		for i := range ids {
			ids[i] = i
		}
		if err := sess.Retract(ids); err != nil {
			return fmt.Errorf("retract: %w", err)
		}
		if err := timedRun(); err != nil {
			return fmt.Errorf("post-retract run: %w", err)
		}
	}
	return sess.Close()
}

// splitAppends carves K append batches of B points off the tail of the
// dataset, leaving the head as the session's initial data.
func splitAppends(points [][]float64, appends, batch int) (initial [][]float64, batches [][][]float64, err error) {
	if appends < 0 || batch < 0 || (appends > 0) != (batch > 0) {
		return nil, nil, fmt.Errorf("streaming needs both -appends ≥ 1 and -append-batch ≥ 1 (or neither)")
	}
	if appends == 0 {
		return points, nil, nil
	}
	tail := appends * batch
	if len(points) <= tail {
		return nil, nil, fmt.Errorf("dataset of %d points cannot seed a session and feed %d appends × %d points", len(points), appends, batch)
	}
	initial = points[:len(points)-tail]
	for i := 0; i < appends; i++ {
		start := len(points) - tail + i*batch
		batches = append(batches, points[start:start+batch])
	}
	return initial, batches, nil
}
