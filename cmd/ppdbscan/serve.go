package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/transport"
)

// The concurrent serving stack. `ppdbscan serve` is one server process
// holding many independent privacy-preserving clustering sessions at
// once: an accept loop hands every inbound client its own session
// goroutine, session id, and traffic Meter (core.SessionManager), while
// all sessions share one bounded crypto worker pool (-workers) so N
// concurrent clients contend for the CPU instead of oversubscribing it.
// One client's disconnect or failed handshake is logged and served
// around — the process keeps accepting. SIGINT starts a graceful drain:
// no new accepts, in-flight runs finish (up to -drain, then their
// connections are force-closed), and the aggregate meter summary prints.
//
// `ppdbscan loadgen` is the matching load driver: C concurrent client
// sessions × R clustering runs each against one serve process, reporting
// wall clock, aggregate bytes, runs/sec, and p50/p95 per-run latency —
// the CLI face of experiment E16's session-concurrency sweep.

// cmdServe runs the concurrent session server as the serving party
// (RoleBob): every accepted client gets its own session (keygen,
// handshake, and grid-index exchange at accept time), and all sessions
// share the process-wide crypto pool.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	p := addProtocolFlags(fs)
	listen := fs.String("listen", ":9000", "address to listen on")
	name := fs.String("name", "", "shard name reported in admission and health replies (default: the bound listen address)")
	dataPath := fs.String("data", "", "CSV file with this party's points (one point per line)")
	workers := fs.String("workers", "", "shared crypto pool size across all sessions (empty or 0 = GOMAXPROCS; auto = GOMAXPROCS divided across -colocated shard processes)")
	colocated := fs.Int("colocated", 1, "shard processes sharing this host; divides the 'auto' crypto pool sizing so co-located shards don't oversubscribe the CPU")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown wait for in-flight sessions before force-closing")
	maxSessions := fs.Int("max-sessions", 0, "admission bound on concurrently live sessions (0 = unlimited); excess connections are refused before the handshake")
	idle := fs.Duration("idle-timeout", 0, "per-session read deadline: a client silent this long mid-session is dropped (0 = off)")
	keepalive := fs.Duration("keepalive", 3*time.Minute, "TCP keepalive probe period on session connections (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	poolWorkers, err := parseWorkers(*workers, *colocated)
	if err != nil {
		return err
	}
	if *maxSessions < 0 {
		return fmt.Errorf("serve requires -max-sessions ≥ 0")
	}
	cfg, err := p.config()
	if err != nil {
		return err
	}
	points, err := readCSV(*dataPath)
	if err != nil {
		return err
	}
	lis, err := transport.NewListener(*listen)
	if err != nil {
		return err
	}
	defer lis.Close()
	lis.SetConnOptions(*idle, *keepalive)
	mgr := core.NewSessionManager(poolWorkers)
	mgr.SetMaxSessions(*maxSessions)
	cfg = mgr.Configure(cfg)
	if *name == "" {
		*name = lis.Addr()
	}
	backend := &dispatch.Backend{Name: *name, Mgr: mgr}
	fmt.Printf("serve: shard %s listening on %s (mode %s, parallel %d, crypto pool %d workers, max sessions %d, idle timeout %v)\n",
		*name, lis.Addr(), p.mode, cfg.Parallel, mgr.Pool().Workers(), *maxSessions, *idle)

	// SIGINT/SIGTERM close the listener; the accept loop falls through to
	// the drain.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; ok {
			fmt.Println("serve: shutdown requested; refusing new sessions, draining in-flight runs")
			lis.Close()
		}
	}()

	var wg sync.WaitGroup
	for {
		conn, err := lis.Accept()
		if errors.Is(err, transport.ErrClosed) {
			break
		}
		if err != nil {
			// A failed accept is one peer's problem, not the server's; the
			// pause keeps a persistent failure (e.g. fd exhaustion) from
			// busy-spinning the loop.
			fmt.Fprintf(os.Stderr, "serve: accept: %v\n", err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		wg.Add(1)
		go func(conn transport.Conn) {
			defer wg.Done()
			serveSession(backend, conn, p.mode, cfg, points)
		}(conn)
	}
	if !mgr.Drain(*drain) {
		fmt.Println("serve: drain timed out; force-closed the remaining sessions")
	}
	wg.Wait()
	snap := mgr.Snapshot()
	fmt.Printf("serve: shut down after %d sessions (%d closed, %d failed), %d runs total\n",
		snap.Opened, snap.Closed, snap.Failed, snap.Runs)
	fmt.Printf("serve: aggregate traffic sent %d bytes, received %d bytes in %d messages\n",
		snap.Traffic.BytesSent, snap.Traffic.BytesRecv, snap.Traffic.Messages())
	return nil
}

// parseWorkers resolves the -workers flag: empty or "0" defers to
// GOMAXPROCS (the SessionManager default), "auto" divides GOMAXPROCS
// across the co-located shard processes on this host (never below 1),
// and a plain integer is taken as-is.
func parseWorkers(s string, colocated int) (int, error) {
	if colocated < 1 {
		return 0, fmt.Errorf("serve requires -colocated ≥ 1")
	}
	switch s {
	case "", "0":
		return 0, nil
	case "auto":
		w := runtime.GOMAXPROCS(0) / colocated
		if w < 1 {
			w = 1
		}
		return w, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("serve requires -workers to be a non-negative integer or 'auto'")
	}
	return n, nil
}

// serveSession runs one client's whole session lifecycle on its own
// goroutine, starting with the serving tier's control preamble: pings
// and stats pulls are answered and closed by the backend, admission
// failures are shed with a typed refusal before any keygen, and only an
// admitted hello proceeds to the protocol handshake. Errors — a refused
// registration, a failed handshake, a mid-run disconnect — end this
// session only; the accept loop never sees them.
func serveSession(backend *dispatch.Backend, conn transport.Conn, mode string, cfg core.Config, points [][]float64) {
	h, ok, err := backend.Accept(conn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return
	}
	if !ok {
		return // ping, stats, or shed — fully handled, conn closed
	}
	defer conn.Close()
	sess, err := sessionByMode(mode, h.Meter(), cfg, core.RoleBob, points)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: session %d: establishment failed: %v\n", h.ID(), err)
		h.End(err)
		return
	}
	h.Activate()
	fmt.Printf("serve: session %d established, setup leakage %v\n", h.ID(), sess.SetupLeakage())
	for {
		res, err := sess.Run()
		if errors.Is(err, core.ErrSessionClosed) {
			fmt.Printf("serve: session %d closed after %d runs, %d appends\n", h.ID(), sess.Runs(), sess.Appends())
			h.End(nil)
			return
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: session %d: run failed: %v\n", h.ID(), err)
			h.End(err)
			return
		}
		h.RunDone()
		fmt.Printf("serve: session %d run %d (%d appends): %d labels, %d clusters, %d cached cmps, run leakage %v\n",
			h.ID(), sess.Runs(), sess.Appends(), len(res.Labels), res.NumClusters, res.CachedComparisons, res.Leakage)
	}
}

// latencyRecorder collects per-run wall-clock latencies across the
// concurrent loadgen clients.
type latencyRecorder struct {
	mu   sync.Mutex
	durs []time.Duration
}

func (l *latencyRecorder) add(d time.Duration) {
	l.mu.Lock()
	l.durs = append(l.durs, d)
	l.mu.Unlock()
}

func (l *latencyRecorder) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.durs)
}

// percentile returns the nearest-rank p-th percentile of the recorded
// latencies (0 with none recorded).
func (l *latencyRecorder) percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration{}, l.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// shardBreakdown splits the loadgen tallies by the backend that served
// (or shed) each client, keyed on the shard name the admission preamble
// reports — through the dispatcher that is the actual serving backend,
// not the dispatcher itself, so the summary shows how the tier spread
// the load.
type shardBreakdown struct {
	mu sync.Mutex
	by map[string]*shardTally
}

type shardTally struct {
	runs  int64
	sheds int64
	lat   latencyRecorder
}

func (b *shardBreakdown) tally(shard string) *shardTally {
	if shard == "" {
		shard = "(unknown)"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.by == nil {
		b.by = make(map[string]*shardTally)
	}
	t := b.by[shard]
	if t == nil {
		t = &shardTally{}
		b.by[shard] = t
	}
	return t
}

func (b *shardBreakdown) shed(shard string) {
	t := b.tally(shard)
	b.mu.Lock()
	t.sheds++
	b.mu.Unlock()
}

func (b *shardBreakdown) run(shard string, d time.Duration) {
	t := b.tally(shard)
	b.mu.Lock()
	t.runs++
	b.mu.Unlock()
	t.lat.add(d)
}

// report prints one per-backend line when the breakdown saw more than
// one shard name (or any shed), so single-server runs stay one-line.
func (b *shardBreakdown) report(wall time.Duration) {
	b.mu.Lock()
	names := make([]string, 0, len(b.by))
	totalSheds := int64(0)
	for n, t := range b.by {
		names = append(names, n)
		totalSheds += t.sheds
	}
	b.mu.Unlock()
	if len(names) < 2 && totalSheds == 0 {
		return
	}
	sort.Strings(names)
	for _, n := range names {
		b.mu.Lock()
		t := b.by[n]
		runs, sheds := t.runs, t.sheds
		b.mu.Unlock()
		fmt.Printf("loadgen: shard %s: %d runs, %.2f runs/sec, p50 %v, p95 %v, %d sheds\n",
			n, runs, float64(runs)/max(wall.Seconds(), 1e-9),
			t.lat.percentile(50).Round(time.Millisecond), t.lat.percentile(95).Round(time.Millisecond), sheds)
	}
}

// ctsTally accumulates the client-side Paillier ciphertext counts
// across every loadgen run, split by direction: uplink is the request
// leg (the comparison uplink "full" packing shrinks), downlink the
// response leg (the masked replies "slots" packing shrinks).
type ctsTally struct {
	up, down atomic.Int64
}

func (t *ctsTally) add(res *core.Result) {
	t.up.Add(res.CiphertextsUplink)
	t.down.Add(res.CiphertextsDownlink)
}

// cmdLoadgen drives C concurrent client sessions × R runs each against
// one serve process and reports aggregate throughput plus per-run
// latency percentiles.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	p := addProtocolFlags(fs)
	connect := fs.String("connect", "", "address of the serving party")
	dataPath := fs.String("data", "", "CSV file with the client-side points (one point per line)")
	clients := fs.Int("clients", 2, "concurrent client sessions C")
	runs := fs.Int("runs", 1, "clustering runs per client R")
	appends := fs.Int("appends", 0, "streaming appends per client after the initial runs (horizontal modes; the server side appends nothing)")
	appendBatch := fs.Int("append-batch", 0, "points per appended batch, taken from the tail of -data")
	window := fs.Bool("window", false, "slide a fixed-width window: every appended batch also expires the oldest live generation")
	retract := fs.Int("retract", 0, "after the runs and appends, each client retracts this many of its oldest live points and re-clusters")
	keyPrefix := fs.String("session-key", "client", "session key prefix; client c greets with '<prefix>-<c>', the consistent-hash routing input")
	shedRetries := fs.Int("shed-retries", 0, "times a shed client re-dials for admission before giving up")
	shedWait := fs.Duration("shed-wait", 200*time.Millisecond, "wait between shed retries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("loadgen requires -connect host:port")
	}
	if *clients < 1 || *runs < 1 {
		return fmt.Errorf("loadgen requires -clients ≥ 1 and -runs ≥ 1")
	}
	if *retract < 0 {
		return fmt.Errorf("loadgen requires -retract ≥ 0")
	}
	cfg, err := p.config()
	if err != nil {
		return err
	}
	points, err := readCSV(*dataPath)
	if err != nil {
		return err
	}
	initial, batches, err := splitAppends(points, *appends, *appendBatch)
	if err != nil {
		return err
	}

	var group transport.MeterGroup
	var runsDone atomic.Int64
	var lat latencyRecorder
	var cts ctsTally
	var breakdown shardBreakdown
	errs := make([]error, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := fmt.Sprintf("%s-%d", *keyPrefix, c)
			errs[c] = driveClient(&group, *connect, key, *shedRetries, *shedWait, p.mode, cfg, initial, batches, *runs, *window, *retract, &runsDone, &lat, &cts, &breakdown)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	failed := 0
	for c, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "loadgen: client %d: %v\n", c, err)
		}
	}
	agg := group.Stats()
	done := runsDone.Load()
	extraRuns := len(batches)
	if *retract > 0 {
		extraRuns++
	}
	totalRuns := int64(*clients) * int64(*runs+extraRuns)
	fmt.Printf("loadgen: %d clients × %d runs + %d appends: %d/%d runs ok, %d clients failed\n",
		*clients, *runs, len(batches), done, totalRuns, failed)
	fmt.Printf("loadgen: wall %v, aggregate %d bytes in %d messages, %.2f runs/sec\n",
		wall.Round(time.Millisecond), agg.Total(), agg.Messages(),
		float64(done)/max(wall.Seconds(), 1e-9))
	fmt.Printf("loadgen: client paillier ciphertexts: %d uplink, %d downlink\n",
		cts.up.Load(), cts.down.Load())
	if lat.count() > 0 {
		fmt.Printf("loadgen: per-run latency p50 %v, p95 %v over %d runs\n",
			lat.percentile(50).Round(time.Millisecond), lat.percentile(95).Round(time.Millisecond), lat.count())
	}
	breakdown.report(wall)
	if failed > 0 {
		return fmt.Errorf("loadgen: %d of %d clients failed", failed, *clients)
	}
	return nil
}

// driveClient runs one loadgen client: dial, greet the tier with the
// session key (retrying a typed shed up to shedRetries times — the
// refusal lands before any keygen, so a retry is cheap), establish a
// session over the initial points, R runs, then one append+run (or,
// with window set, window-slide+run) per batch, an optional
// retract+run, close.
func driveClient(group *transport.MeterGroup, connect, key string, shedRetries int, shedWait time.Duration, mode string, cfg core.Config, initial [][]float64, batches [][][]float64, runs int, window bool, retract int, runsDone *atomic.Int64, lat *latencyRecorder, cts *ctsTally, breakdown *shardBreakdown) error {
	var conn transport.Conn
	var shard string
	for attempt := 0; ; attempt++ {
		c, err := transport.Dial(connect)
		if err != nil {
			return err
		}
		s, err := dispatch.Hello(c, key)
		if err == nil {
			conn, shard = c, s
			break
		}
		c.Close()
		if errors.Is(err, core.ErrServerFull) || errors.Is(err, core.ErrDraining) {
			breakdown.shed(s)
			if attempt < shedRetries {
				time.Sleep(shedWait)
				continue
			}
		}
		return fmt.Errorf("admission: %w", err)
	}
	defer conn.Close()
	meter := group.New(conn)
	sess, err := sessionByMode(mode, meter, cfg, core.RoleAlice, initial)
	if err != nil {
		return fmt.Errorf("session establishment: %w", err)
	}
	timedRun := func() error {
		runStart := time.Now()
		res, err := sess.Run()
		if err != nil {
			return err
		}
		cts.add(res)
		d := time.Since(runStart)
		lat.add(d)
		breakdown.run(shard, d)
		runsDone.Add(1)
		return nil
	}
	for i := 0; i < runs; i++ {
		if err := timedRun(); err != nil {
			return fmt.Errorf("run %d: %w", i+1, err)
		}
	}
	for i, batch := range batches {
		if window {
			if err := sess.WindowAppend(batch); err != nil {
				return fmt.Errorf("window append %d: %w", i+1, err)
			}
		} else if err := sess.Append(batch); err != nil {
			return fmt.Errorf("append %d: %w", i+1, err)
		}
		if err := timedRun(); err != nil {
			return fmt.Errorf("post-append run %d: %w", i+1, err)
		}
	}
	if retract > 0 {
		ids := make([]int, retract)
		for i := range ids {
			ids[i] = i
		}
		if err := sess.Retract(ids); err != nil {
			return fmt.Errorf("retract: %w", err)
		}
		if err := timedRun(); err != nil {
			return fmt.Errorf("post-retract run: %w", err)
		}
	}
	return sess.Close()
}

// splitAppends carves K append batches of B points off the tail of the
// dataset, leaving the head as the session's initial data.
func splitAppends(points [][]float64, appends, batch int) (initial [][]float64, batches [][][]float64, err error) {
	if appends < 0 || batch < 0 || (appends > 0) != (batch > 0) {
		return nil, nil, fmt.Errorf("streaming needs both -appends ≥ 1 and -append-batch ≥ 1 (or neither)")
	}
	if appends == 0 {
		return points, nil, nil
	}
	tail := appends * batch
	if len(points) <= tail {
		return nil, nil, fmt.Errorf("dataset of %d points cannot seed a session and feed %d appends × %d points", len(points), appends, batch)
	}
	initial = points[:len(points)-tail]
	for i := 0; i < appends; i++ {
		start := len(points) - tail + i*batch
		batches = append(batches, points[start:start+batch])
	}
	return initial, batches, nil
}
