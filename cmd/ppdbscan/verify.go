package main

import (
	"flag"
	"fmt"
	"strings"
	"sync"

	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/metrics"
	"repro/internal/multiparty"
	"repro/internal/partition"
	"repro/internal/transport"
)

// cmdVerify runs a fast end-to-end correctness audit of every protocol
// family against its plaintext oracle and prints PASS/FAIL per check —
// the operator-facing counterpart of the test suite, useful after
// building on a new platform.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "dataset seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d := dataset.WithNoise(dataset.Blobs(30, 2, 0.35, *seed), 4, *seed+1)
	grid, _ := dataset.Quantize(d, 16)
	cfg := core.Config{
		Eps: 3, MinPts: 3, MaxCoord: 15,
		PaillierBits: 256, RSABits: 256,
		Engine: compare.EngineMasked, Seed: *seed,
	}

	codec, err := cfg.Codec()
	if err != nil {
		return err
	}
	enc, err := codec.EncodePoints(grid.Points)
	if err != nil {
		return err
	}
	epsSq, err := codec.EpsSquared(cfg.Eps)
	if err != nil {
		return err
	}
	oracle, err := dbscan.ClusterInt(enc, epsSq, cfg.MinPts)
	if err != nil {
		return err
	}

	var failed []string
	check := func(name string, ok bool, err error) {
		switch {
		case err != nil:
			failed = append(failed, name)
			fmt.Printf("FAIL  %-32s %v\n", name, err)
		case !ok:
			failed = append(failed, name)
			fmt.Printf("FAIL  %-32s output diverges from oracle\n", name)
		default:
			fmt.Printf("PASS  %s\n", name)
		}
	}

	// Horizontal (basic + enhanced) vs Algorithm 3/4 simulation.
	hs, err := partition.HorizontalRandom(grid.Points, 0.5, *seed)
	if err != nil {
		return err
	}
	encA, _ := codec.EncodePoints(hs.Alice)
	encB, _ := codec.EncodePoints(hs.Bob)
	wantA, _, wantB, _ := core.SimulateHorizontal(encA, encB, epsSq, cfg.MinPts)
	for _, proto := range []struct {
		name    string
		aliceFn func(transport.Conn, core.Config, [][]float64) (*core.Result, error)
		bobFn   func(transport.Conn, core.Config, [][]float64) (*core.Result, error)
	}{
		{"horizontal (§4.2)", core.HorizontalAlice, core.HorizontalBob},
		{"enhanced horizontal (§5)", core.EnhancedHorizontalAlice, core.EnhancedHorizontalBob},
	} {
		var ra, rb *core.Result
		err := transport.Run2(
			func(c transport.Conn) error {
				r, err := proto.aliceFn(c, cfg, hs.Alice)
				ra = r
				return err
			},
			func(c transport.Conn) error {
				r, err := proto.bobFn(c, cfg, hs.Bob)
				rb = r
				return err
			},
		)
		ok := err == nil && ra != nil && rb != nil &&
			metrics.ExactMatch(ra.Labels, wantA) && metrics.ExactMatch(rb.Labels, wantB)
		check(proto.name, ok, err)
	}

	// Vertical vs pooled DBSCAN.
	vs, err := partition.Vertical(grid.Points, 1)
	if err != nil {
		return err
	}
	var vr *core.Result
	err = transport.Run2(
		func(c transport.Conn) error {
			r, err := core.VerticalAlice(c, cfg, vs.Alice)
			vr = r
			return err
		},
		func(c transport.Conn) error {
			_, err := core.VerticalBob(c, cfg, vs.Bob)
			return err
		},
	)
	check("vertical (§4.3)", err == nil && vr != nil && metrics.ExactMatch(vr.Labels, oracle.Labels), err)

	// Arbitrary vs pooled DBSCAN.
	as, err := partition.ArbitraryRandom(grid.Points, 0.5, *seed+2)
	if err != nil {
		return err
	}
	var ar *core.Result
	err = transport.Run2(
		func(c transport.Conn) error {
			r, err := core.ArbitraryAlice(c, cfg, as.Alice, as.Owners)
			ar = r
			return err
		},
		func(c transport.Conn) error {
			_, err := core.ArbitraryBob(c, cfg, as.Bob, as.Owners)
			return err
		},
	)
	check("arbitrary (§4.4)", err == nil && ar != nil && metrics.ExactMatch(ar.Labels, oracle.Labels), err)

	// 3-party vertical ring vs pooled DBSCAN.
	d3 := dataset.BlobsDim(18, 2, 3, 0.3, *seed)
	g3, _ := dataset.Quantize(d3, 16)
	enc3 := make([][]int64, len(g3.Points))
	for i, row := range g3.Points {
		r := make([]int64, len(row))
		for j, v := range row {
			r[j] = int64(v)
		}
		enc3[i] = r
	}
	mcfg := multiparty.Config{
		Eps: 3, MinPts: 3, MaxCoord: 15,
		PaillierBits: 256, RSABits: 256, Engine: compare.EngineMasked,
	}
	oracle3, err := dbscan.ClusterInt(enc3, int64(mcfg.Eps*mcfg.Eps), mcfg.MinPts)
	if err != nil {
		return err
	}
	ring := multiparty.NewLocalRing(3)
	results := make([]*multiparty.Result, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			part := make([][]float64, len(g3.Points))
			for i, row := range g3.Points {
				part[i] = []float64{row[p]}
			}
			results[p], errs[p] = multiparty.Run(ring[p], mcfg, part)
			ring[p].Next.Close()
			ring[p].Prev.Close()
		}(p)
	}
	wg.Wait()
	ringOK := true
	var ringErr error
	for p := 0; p < 3; p++ {
		if errs[p] != nil {
			ringErr = errs[p]
			ringOK = false
		} else if !metrics.ExactMatch(results[p].Labels, oracle3.Labels) {
			ringOK = false
		}
	}
	check("3-party vertical ring (ext)", ringOK, ringErr)

	// Surface failures as an error (main exits non-zero naming the
	// checks) rather than os.Exit here, so deferred cleanup still runs
	// and callers embedding cmdVerify see a real error value.
	if len(failed) > 0 {
		return fmt.Errorf("verify failed: %s", strings.Join(failed, ", "))
	}
	fmt.Println("all protocol families verified against their oracles")
	return nil
}
