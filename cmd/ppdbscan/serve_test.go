package main

import (
	"runtime"
	"testing"
)

func TestParseWorkers(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		in        string
		colocated int
		want      int
		wantErr   bool
	}{
		{"", 1, 0, false},
		{"0", 1, 0, false},
		{"3", 1, 3, false},
		{"auto", 1, gmp, false},
		{"auto", gmp + 1, 1, false}, // more shards than cores: never below 1
		{"-2", 1, 0, true},
		{"many", 1, 0, true},
		{"auto", 0, 0, true},
	}
	for _, c := range cases {
		got, err := parseWorkers(c.in, c.colocated)
		if (err != nil) != c.wantErr {
			t.Fatalf("parseWorkers(%q, %d): err=%v wantErr=%v", c.in, c.colocated, err, c.wantErr)
		}
		if err == nil && got != c.want {
			t.Fatalf("parseWorkers(%q, %d) = %d, want %d", c.in, c.colocated, got, c.want)
		}
	}
}

func TestParseWorkersAutoDivides(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	if gmp < 2 {
		t.Skip("needs GOMAXPROCS ≥ 2 to observe division")
	}
	got, err := parseWorkers("auto", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != gmp/2 {
		t.Fatalf("auto across 2 co-located shards: got %d, want %d", got, gmp/2)
	}
}
